// Prepared-solver handle suite (PR 4): SpdProblem / LsqProblem pay matrix
// analysis once and solve many times, with results bit-identical to the
// one-shot free functions under the pinned scan at equal seed.
//
//  (a) Handle solves equal the free functions bit for bit: at 1 worker in
//      the shared scope for all three sync modes, and at 1/2/4 workers for
//      all three sync modes under owner-computes randomization on a
//      block-diagonal matrix whose blocks align with every tested worker
//      partition (no cross-partition reads -> every interleaving produces
//      the same iterate, so multi-worker runs are deterministic).
//  (b) Preparation is amortized: symmetry/diagonal/rank validation runs
//      once per problem (not per solve), the LSQ transpose is built once
//      and shared through the CsrMatrix cache, and a repeat solve performs
//      no new scratch allocations.
//  (c) The unified SolveOutcome: status semantics, the block solver's
//      pinned-scan downgrade surfaced in scan_executed / the report, and
//      the thread-safety contract (concurrent solve() on distinct x).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "asyrgs/core/async_lsq.hpp"
#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/iter/precond.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/problem.hpp"
#include "asyrgs/solve.hpp"
#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {
namespace {

/// Block-diagonal SPD matrix: `blocks` tridiagonal (2, -1) blocks of
/// `block_size` rows each.  With n = blocks * block_size and worker counts
/// that divide `blocks`, owner-computes partitions never straddle a block,
/// so no worker ever reads another worker's coordinates and the solve is
/// bit-deterministic at any team size.
CsrMatrix block_diag_tridiagonal(int blocks, index_t block_size) {
  const index_t n = blocks * block_size;
  CooBuilder builder(n, n);
  for (int blk = 0; blk < blocks; ++blk) {
    const index_t lo = blk * block_size;
    for (index_t i = 0; i < block_size; ++i) {
      builder.add(lo + i, lo + i, 2.0);
      if (i + 1 < block_size) {
        builder.add(lo + i, lo + i + 1, -1.0);
        builder.add(lo + i + 1, lo + i, -1.0);
      }
    }
  }
  return builder.to_csr();
}

/// Tall full-column-rank matrix for the least-squares handle tests.
CsrMatrix tall_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  CooBuilder builder(rows, cols);
  Xoshiro256 rng(seed);
  for (index_t j = 0; j < cols; ++j)
    builder.add(j, j, 2.0 + 0.01 * static_cast<double>(j));
  for (index_t i = cols; i < rows; ++i) {
    const index_t j = uniform_index(rng, cols);
    builder.add(i, j, normal(rng));
  }
  return builder.to_csr();
}

SolveControls async_controls(const AsyncRgsOptions& opt) {
  return to_controls(opt);
}

// --- (a) bit-identity with the free functions --------------------------------

TEST(PreparedSpd, SecondSolveBitIdenticalToFreeFunctionOneWorker) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(9, 9);
  const std::vector<double> b = random_vector(a.rows(), 3);

  for (SyncMode sync : {SyncMode::kFreeRunning, SyncMode::kBarrierPerSweep,
                        SyncMode::kTimedBarrier}) {
    AsyncRgsOptions opt;
    opt.sweeps = 25;
    opt.seed = 17;
    opt.workers = 1;
    opt.sync = sync;
    opt.sync_interval_seconds = 0.002;

    std::vector<double> x_free(a.rows(), 0.0);
    async_rgs_solve(pool, a, b, x_free, opt);

    SpdProblem problem(pool, a);
    std::vector<double> x1(a.rows(), 0.0);
    std::vector<double> x2(a.rows(), 0.0);
    const SolveOutcome out1 = problem.solve(b, x1, async_controls(opt));
    const SolveOutcome out2 = problem.solve(b, x2, async_controls(opt));
    EXPECT_EQ(x_free, x1) << "sync=" << static_cast<int>(sync);
    EXPECT_EQ(x_free, x2) << "sync=" << static_cast<int>(sync);
    EXPECT_EQ(out1.method_used, SpdMethod::kAsyncRgs);
    EXPECT_EQ(out2.workers, 1);
  }
}

TEST(PreparedSpd, OwnerComputesBitIdenticalAcrossWorkersAndSyncModes) {
  // Block-diagonal + owner-computes: partitions at 1/2/4 workers align with
  // block boundaries, so multi-worker runs are fully deterministic and the
  // handle/free-function comparison is exact even on a racy shared iterate.
  ThreadPool pool(4);
  const CsrMatrix a = block_diag_tridiagonal(/*blocks=*/4, /*block_size=*/12);
  const std::vector<double> b = random_vector(a.rows(), 5);

  SpdProblem problem(pool, a);
  for (SyncMode sync : {SyncMode::kFreeRunning, SyncMode::kBarrierPerSweep,
                        SyncMode::kTimedBarrier}) {
    for (int workers : {1, 2, 4}) {
      AsyncRgsOptions opt;
      opt.sweeps = 30;
      opt.seed = 23;
      opt.workers = workers;
      opt.sync = sync;
      opt.scope = RandomizationScope::kOwnerComputes;
      opt.sync_interval_seconds = 0.002;

      std::vector<double> x_free(a.rows(), 0.0);
      async_rgs_solve(pool, a, b, x_free, opt);

      std::vector<double> x1(a.rows(), 0.0);
      std::vector<double> x2(a.rows(), 0.0);
      problem.solve(b, x1, async_controls(opt));
      problem.solve(b, x2, async_controls(opt));
      EXPECT_EQ(x_free, x1)
          << "sync=" << static_cast<int>(sync) << " workers=" << workers;
      EXPECT_EQ(x_free, x2)
          << "sync=" << static_cast<int>(sync) << " workers=" << workers;
    }
  }
}

TEST(PreparedSpd, SolveSpdWrapperMatchesHandle) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(8, 8);
  const std::vector<double> x_star = random_vector(a.rows(), 7);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  SpdSolveOptions sopt;
  sopt.method = SpdMethod::kAsyncRgs;
  sopt.rel_tol = 1e-8;
  sopt.threads = 1;
  sopt.max_iterations = 4000;
  std::vector<double> x_wrapper(a.rows(), 0.0);
  const SpdSolveSummary summary = solve_spd(pool, a, b, x_wrapper, sopt);

  SpdProblem problem(pool, a);
  SolveControls controls;
  controls.method = SpdMethod::kAsyncRgs;
  controls.sweeps = 4000;
  controls.rel_tol = 1e-8;
  controls.workers = 1;
  controls.sync = SyncMode::kBarrierPerSweep;
  std::vector<double> x_handle(a.rows(), 0.0);
  const SolveOutcome out = problem.solve(b, x_handle, controls);

  EXPECT_EQ(x_wrapper, x_handle);
  EXPECT_EQ(summary.converged, out.converged());
  EXPECT_EQ(summary.status, out.status);
  EXPECT_EQ(summary.iterations, out.iterations);
}

TEST(PreparedLsq, SecondSolveBitIdenticalToFreeFunction) {
  ThreadPool pool(2);
  const CsrMatrix a = tall_matrix(160, 50, 11);
  const std::vector<double> b = random_vector(a.rows(), 13);

  AsyncRgsOptions opt;
  opt.sweeps = 20;
  opt.seed = 31;
  opt.workers = 1;
  opt.step_size = 0.9;

  std::vector<double> x_free(static_cast<std::size_t>(a.cols()), 0.0);
  async_lsq_solve(pool, a, b, x_free, opt);

  LsqProblem problem(pool, a);
  std::vector<double> x1(static_cast<std::size_t>(a.cols()), 0.0);
  std::vector<double> x2(static_cast<std::size_t>(a.cols()), 0.0);
  problem.solve(b, x1, async_controls(opt));
  problem.solve(b, x2, async_controls(opt));
  EXPECT_EQ(x_free, x1);
  EXPECT_EQ(x_free, x2);
}

// --- (b) analysis amortization -----------------------------------------------

TEST(PreparedSpd, ValidationRunsOncePerProblemNotPerSolve) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(7, 7);
  const std::vector<double> b = random_vector(a.rows(), 2);

  SpdProblem problem(pool, a, /*check_input=*/true);
  EXPECT_EQ(problem.stats().validation_passes, 1);

  AsyncRgsOptions opt;
  opt.sweeps = 5;
  opt.workers = 1;
  std::vector<double> x(a.rows(), 0.0);
  problem.solve(b, x, async_controls(opt));
  problem.solve(b, x, async_controls(opt));
  const ProblemStats stats = problem.stats();
  EXPECT_EQ(stats.validation_passes, 1);  // not re-run per solve
  EXPECT_EQ(stats.solves, 2);
}

TEST(PreparedSpd, RepeatSolvePerformsNoNewScratchAllocations) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(8, 8);
  const std::vector<double> b = random_vector(a.rows(), 4);

  SpdProblem problem(pool, a);
  AsyncRgsOptions opt;
  opt.sweeps = 8;
  opt.workers = 2;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.track_history = true;
  std::vector<double> x(a.rows(), 0.0);
  problem.solve(b, x, async_controls(opt));
  const long long after_first = problem.stats().scratch_allocations;
  EXPECT_GT(after_first, 0);
  problem.solve(b, x, async_controls(opt));
  problem.solve(b, x, async_controls(opt));
  EXPECT_EQ(problem.stats().scratch_allocations, after_first);
}

TEST(PreparedLsq, TransposeBuiltOncePerMatrix) {
  ThreadPool pool(2);
  const CsrMatrix a = tall_matrix(120, 40, 19);
  EXPECT_FALSE(a.transpose_cached());

  LsqProblem first(pool, a);
  EXPECT_TRUE(a.transpose_cached());
  EXPECT_EQ(first.stats().transpose_builds, 1);

  // A second handle against the same matrix shares the cached transpose.
  LsqProblem second(pool, a);
  EXPECT_EQ(second.stats().transpose_builds, 0);
  EXPECT_EQ(&first.transpose(), &second.transpose());

  // Repeat solves build nothing further.
  const std::vector<double> b = random_vector(a.rows(), 21);
  std::vector<double> x(static_cast<std::size_t>(a.cols()), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 5;
  opt.workers = 1;
  opt.step_size = 0.9;
  first.solve(b, x, async_controls(opt));
  first.solve(b, x, async_controls(opt));
  EXPECT_EQ(first.stats().transpose_builds, 1);
}

TEST(PreparedLsq, ConvenienceOverloadUsesSharedTransposeCache) {
  // The async_lsq_solve overload that materializes A^T internally now goes
  // through the matrix's cache: repeated calls build the transpose once.
  ThreadPool pool(2);
  const CsrMatrix a = tall_matrix(120, 40, 23);
  const std::vector<double> b = random_vector(a.rows(), 8);
  AsyncRgsOptions opt;
  opt.sweeps = 5;
  opt.workers = 1;
  opt.step_size = 0.9;

  EXPECT_FALSE(a.transpose_cached());
  std::vector<double> x1(static_cast<std::size_t>(a.cols()), 0.0);
  async_lsq_solve(pool, a, b, x1, opt);
  EXPECT_TRUE(a.transpose_cached());
  const CsrMatrix* cached = a.transpose_shared().get();

  std::vector<double> x2(static_cast<std::size_t>(a.cols()), 0.0);
  async_lsq_solve(pool, a, b, x2, opt);
  EXPECT_EQ(a.transpose_shared().get(), cached);  // same instance, not rebuilt
  EXPECT_EQ(x1, x2);
}

// --- (c) unified outcome and contracts ---------------------------------------

TEST(SolveOutcomeStatus, ConvergedToleranceMissedAndBudgetCompleted) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(6, 6);
  const std::vector<double> x_star = random_vector(a.rows(), 9);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  SpdProblem problem(pool, a);

  SolveControls controls;
  controls.method = SpdMethod::kAsyncRgs;
  controls.workers = 1;

  // Loose tolerance under a synchronizing mode: converged.
  controls.sweeps = 5000;
  controls.rel_tol = 1e-3;
  controls.sync = SyncMode::kBarrierPerSweep;
  std::vector<double> x(a.rows(), 0.0);
  SolveOutcome out = problem.solve(b, x, controls);
  EXPECT_EQ(out.status, SolveStatus::kConverged);
  EXPECT_TRUE(out.converged());
  EXPECT_EQ(std::string(to_string(out.status)), "converged");

  // Unreachable tolerance with a tiny budget: tolerance not reached.
  controls.sweeps = 2;
  controls.rel_tol = 1e-14;
  std::fill(x.begin(), x.end(), 0.0);
  out = problem.solve(b, x, controls);
  EXPECT_EQ(out.status, SolveStatus::kToleranceNotReached);
  EXPECT_FALSE(out.converged());

  // Free-running runs never evaluate residuals: a fixed budget completes.
  controls.sweeps = 3;
  controls.rel_tol = 0.0;
  controls.sync = SyncMode::kFreeRunning;
  std::fill(x.begin(), x.end(), 0.0);
  out = problem.solve(b, x, controls);
  EXPECT_EQ(out.status, SolveStatus::kBudgetCompleted);
  EXPECT_EQ(std::string(to_string(out.status)), "budget-completed");
}

TEST(BlockScanMode, SmallBlocksHonourReassociatedWiderBlocksDowngrade) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(6, 6);
  SpdProblem problem(pool, a);

  SolveControls controls;
  controls.sweeps = 4;
  controls.workers = 1;
  controls.scan = ScanMode::kReassociated;

  // k <= 4: the register-resident small-K kernel honours the request.
  {
    const MultiVector b = random_multivector(a.rows(), 3, 5);
    MultiVector x(a.rows(), 3);
    const SolveOutcome out = problem.solve(b, x, controls);
    EXPECT_EQ(out.scan_requested, ScanMode::kReassociated);
    EXPECT_EQ(out.scan_executed, ScanMode::kReassociated);
    EXPECT_EQ(out.description.find("pinned"), std::string::npos)
        << out.description;

    // The legacy report surfaces the same honoured request, bit-identically.
    AsyncRgsOptions opt;
    opt.sweeps = 4;
    opt.workers = 1;
    opt.scan = ScanMode::kReassociated;
    MultiVector x_free(a.rows(), 3);
    const AsyncRgsReport block_report =
        async_rgs_solve_block(pool, a, b, x_free, opt);
    EXPECT_EQ(block_report.scan_used, ScanMode::kReassociated);
    for (std::size_t i = 0; i < x.size(); ++i)
      ASSERT_EQ(x.data()[i], x_free.data()[i]) << "i=" << i;
  }

  // k > 4: gamma no longer fits in registers; the pinned column-parallel
  // kernel runs and the downgrade is surfaced.
  {
    const MultiVector b = random_multivector(a.rows(), 5, 5);
    MultiVector x(a.rows(), 5);
    const SolveOutcome out = problem.solve(b, x, controls);
    EXPECT_EQ(out.scan_requested, ScanMode::kReassociated);
    EXPECT_EQ(out.scan_executed, ScanMode::kPinned);
    EXPECT_NE(out.description.find("pinned"), std::string::npos)
        << out.description;
  }

  // The single-RHS kernels honour the request as before.
  AsyncRgsOptions opt;
  opt.sweeps = 4;
  opt.workers = 1;
  opt.scan = ScanMode::kReassociated;
  const std::vector<double> b1 = random_vector(a.rows(), 6);
  std::vector<double> x1(a.rows(), 0.0);
  const AsyncRgsReport single_report =
      async_rgs_solve(pool, a, b1, x1, opt);
  EXPECT_EQ(single_report.scan_used, ScanMode::kReassociated);
}

TEST(PreparedSpd, ConcurrentSolvesOnDistinctIteratesAreSerializedSafely) {
  // The documented contract: concurrent solve() calls on one handle are
  // safe (internally serialized) and produce the same results as running
  // them one after another.
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(8, 8);
  const std::vector<double> b1 = random_vector(a.rows(), 41);
  const std::vector<double> b2 = random_vector(a.rows(), 43);
  SpdProblem problem(pool, a);

  AsyncRgsOptions opt;
  opt.sweeps = 20;
  opt.workers = 1;
  opt.seed = 3;

  std::vector<double> ref1(a.rows(), 0.0);
  std::vector<double> ref2(a.rows(), 0.0);
  problem.solve(b1, ref1, async_controls(opt));
  problem.solve(b2, ref2, async_controls(opt));

  std::vector<double> x1(a.rows(), 0.0);
  std::vector<double> x2(a.rows(), 0.0);
  std::thread t1([&] { problem.solve(b1, x1, async_controls(opt)); });
  std::thread t2([&] { problem.solve(b2, x2, async_controls(opt)); });
  t1.join();
  t2.join();
  EXPECT_EQ(ref1, x1);
  EXPECT_EQ(ref2, x2);
}

TEST(PreparedSpd, FcgMethodReusesThePreparedHandle) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(8, 8);
  const std::vector<double> x_star = random_vector(a.rows(), 15);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  SpdProblem problem(pool, a);
  SolveControls controls;
  controls.method = SpdMethod::kFcgAsyRgs;
  controls.rel_tol = 1e-8;
  controls.workers = 1;
  controls.inner_sweeps = 2;
  controls.seed = 1;
  std::vector<double> x(a.rows(), 0.0);
  const SolveOutcome out = problem.solve(b, x, controls);
  EXPECT_EQ(out.status, SolveStatus::kConverged);
  EXPECT_LE(relative_residual(a, b, x), 1e-7);
  // Inner preconditioner applications run through this same handle, so the
  // per-matrix validation stayed at construction-time count.
  EXPECT_EQ(problem.stats().validation_passes, 1);

  // Bit-identical to the one-shot wrapper at equal seed and one worker.
  SpdSolveOptions sopt;
  sopt.method = SpdMethod::kFcgAsyRgs;
  sopt.rel_tol = 1e-8;
  sopt.threads = 1;
  sopt.inner_sweeps = 2;
  sopt.seed = 1;
  std::vector<double> x_wrapper(a.rows(), 0.0);
  const SpdSolveSummary summary = solve_spd(pool, a, b, x_wrapper, sopt);
  EXPECT_TRUE(summary.converged);
  EXPECT_EQ(x, x_wrapper);
}

TEST(PreparedSpd, BorrowedPreconditionerStaysVariable) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(8, 8);
  SpdProblem problem(pool, a);
  AsyRgsPreconditioner pc(problem, /*sweeps=*/2, /*workers=*/1);
  EXPECT_TRUE(pc.is_variable());

  const std::vector<double> r = random_vector(a.rows(), 3);
  std::vector<double> z1, z2;
  const long long solves_before = problem.stats().solves;
  pc.apply(r, z1);
  pc.apply(r, z2);
  EXPECT_NE(z1, z2);  // fresh random directions per application
  EXPECT_EQ(problem.stats().solves, solves_before + 2);
}

}  // namespace
}  // namespace asyrgs
