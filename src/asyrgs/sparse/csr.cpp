#include "asyrgs/sparse/csr.hpp"

#include <algorithm>
#include <cmath>

namespace asyrgs {

CsrMatrix::CsrMatrix(index_t rows, index_t cols, std::vector<nnz_t> row_ptr,
                     std::vector<index_t> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  require(rows_ > 0 && cols_ > 0, "CsrMatrix: dimensions must be positive");
  require(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
          "CsrMatrix: row_ptr must have rows+1 entries");
  require(row_ptr_.front() == 0, "CsrMatrix: row_ptr must start at 0");
  require(col_idx_.size() == values_.size(),
          "CsrMatrix: col_idx/values size mismatch");
  require(row_ptr_.back() == static_cast<nnz_t>(col_idx_.size()),
          "CsrMatrix: row_ptr end does not match nnz");
  for (index_t i = 0; i < rows_; ++i) {
    require(row_ptr_[i] <= row_ptr_[i + 1],
            "CsrMatrix: row_ptr must be non-decreasing");
    for (nnz_t t = row_ptr_[i]; t < row_ptr_[i + 1]; ++t) {
      require(col_idx_[t] >= 0 && col_idx_[t] < cols_,
              "CsrMatrix: column index out of range");
      if (t > row_ptr_[i])
        require(col_idx_[t - 1] < col_idx_[t],
                "CsrMatrix: columns must be strictly increasing in each row");
    }
  }
}

double CsrMatrix::at(index_t i, index_t j) const {
  require(i >= 0 && i < rows_ && j >= 0 && j < cols_,
          "CsrMatrix::at: index out of range");
  const auto cols = row_cols(i);
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  return values_[row_ptr_[i] + (it - cols.begin())];
}

double CsrMatrix::row_dot(index_t i, const double* x) const noexcept {
  const nnz_t lo = row_ptr_[i];
  return csr_row_dot(col_idx_.data() + lo, values_.data() + lo,
                     row_ptr_[i + 1] - lo, x);
}

void CsrMatrix::multiply(const double* x, double* y) const {
  for (index_t i = 0; i < rows_; ++i) y[i] = row_dot(i, x);
}

void CsrMatrix::multiply_transpose(const double* x, double* y) const {
  std::fill(y, y + cols_, 0.0);
  for (index_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (nnz_t t = row_ptr_[i]; t < row_ptr_[i + 1]; ++t)
      y[col_idx_[t]] += values_[t] * xi;
  }
}

std::vector<double> CsrMatrix::diagonal() const {
  require(square(), "CsrMatrix::diagonal: matrix must be square");
  std::vector<double> d(static_cast<std::size_t>(rows_), 0.0);
  for (index_t i = 0; i < rows_; ++i) d[i] = at(i, i);
  return d;
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<nnz_t> t_row_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (index_t c : col_idx_) t_row_ptr[c + 1]++;
  for (index_t j = 0; j < cols_; ++j) t_row_ptr[j + 1] += t_row_ptr[j];

  std::vector<index_t> t_col(col_idx_.size());
  std::vector<double> t_val(values_.size());
  std::vector<nnz_t> cursor(t_row_ptr.begin(), t_row_ptr.end() - 1);
  // Walking rows in order writes each transposed row's entries in increasing
  // original-row order, so column indices stay sorted.
  for (index_t i = 0; i < rows_; ++i) {
    for (nnz_t t = row_ptr_[i]; t < row_ptr_[i + 1]; ++t) {
      const nnz_t slot = cursor[col_idx_[t]]++;
      t_col[slot] = i;
      t_val[slot] = values_[t];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(t_row_ptr), std::move(t_col),
                   std::move(t_val));
}

ColumnCompression drop_empty_columns(const CsrMatrix& a) {
  std::vector<char> used(static_cast<std::size_t>(a.cols()), 0);
  for (index_t c : a.col_idx()) used[static_cast<std::size_t>(c)] = 1;

  ColumnCompression out;
  std::vector<index_t> new_index(static_cast<std::size_t>(a.cols()), -1);
  for (index_t c = 0; c < a.cols(); ++c) {
    if (used[static_cast<std::size_t>(c)]) {
      new_index[static_cast<std::size_t>(c)] =
          static_cast<index_t>(out.kept_columns.size());
      out.kept_columns.push_back(c);
    }
  }
  require(!out.kept_columns.empty(), "drop_empty_columns: matrix is all zero");

  std::vector<index_t> col_idx(a.col_idx());
  for (index_t& c : col_idx) c = new_index[static_cast<std::size_t>(c)];
  out.matrix =
      CsrMatrix(a.rows(), static_cast<index_t>(out.kept_columns.size()),
                a.row_ptr(), std::move(col_idx), a.values());
  return out;
}

bool CsrMatrix::equals(const CsrMatrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  if (row_ptr_ != other.row_ptr_ || col_idx_ != other.col_idx_) return false;
  for (std::size_t t = 0; t < values_.size(); ++t)
    if (std::abs(values_[t] - other.values_[t]) > tol) return false;
  return true;
}

}  // namespace asyrgs
