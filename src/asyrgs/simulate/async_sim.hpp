// Sequential simulator of the asynchronous governing iterations.
//
// A real shared-memory run cannot *enforce* the paper's analysis model: the
// snapshot index k(j) / visible set K(j) are produced by the hardware, not
// chosen, and Assumption A-2 (consistent read) cannot be guaranteed without
// expensive provisions.  This simulator replays iterations (8) and (9)
// exactly:
//
//   consistent:    gamma_j = (b_{r_j} - A_{r_j} x_{k(j)}) / A_{r_j r_j}
//   inconsistent:  gamma_j = (b_{r_j} - A_{r_j} x_{K(j)}) / A_{r_j r_j}
//   both:          x_{j+1} = x_j + beta * gamma_j * e_{r_j}
//
// with delay schedules from delay_models.hpp.  Stale states are
// reconstructed from a ring buffer of the last tau updates — x_{k(j)} is
// x_j minus the updates in (k(j), j), each touching a single coordinate —
// so a step costs O(nnz(row) + tau): the row scan is the shared
// csr_row_sub_dot kernel and each stale correction is an O(1) lookup in a
// dense scatter of the reading row.
//
// The companion virtual engine (virtual_engine.hpp) executes the same
// governing iterations through the *production* update kernel instead of
// this replay arithmetic; the two cross-check each other in the tests.
//
// The simulator records ||x_j - x*||_A^2, the quantity whose expectation
// E_m the theorems bound; tests and the tau-ablation bench average it over
// direction seeds and compare against theory/bounds.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "asyrgs/simulate/delay_models.hpp"
#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// Simulation parameters.
struct SimOptions {
  std::uint64_t iterations = 0;  ///< total coordinate updates to replay
  double step_size = 1.0;        ///< beta
  std::uint64_t seed = 1;        ///< direction stream key (Philox)
  /// Record the squared A-norm error every `record_every` iterations
  /// (0 = record only the final state).  Recording costs O(nnz).
  std::uint64_t record_every = 0;
};

/// Simulation outcome.
struct SimResult {
  double final_error_sq = 0.0;  ///< ||x_m - x*||_A^2
  std::uint64_t iterations = 0;
  std::vector<std::uint64_t> record_points;  ///< iteration indices recorded
  std::vector<double> error_sq_history;      ///< matching ||x_j - x*||_A^2
  std::vector<double> x;                     ///< final iterate
};

/// Replays the consistent-read iteration (8).  `a` must be square with a
/// strictly positive diagonal; the theorem-validation tests feed it
/// unit-diagonal (scaled) matrices as the theory assumes.
SimResult simulate_consistent(const CsrMatrix& a, const std::vector<double>& b,
                              const std::vector<double>& x0,
                              const std::vector<double>& x_star,
                              const ConsistentDelayModel& delay,
                              const SimOptions& options);

/// Replays the inconsistent-read iteration (9).
SimResult simulate_inconsistent(const CsrMatrix& a,
                                const std::vector<double>& b,
                                const std::vector<double>& x0,
                                const std::vector<double>& x_star,
                                const InconsistentDelayModel& delay,
                                const SimOptions& options);

}  // namespace asyrgs
