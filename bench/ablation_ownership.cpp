// Ablation F — Restricted randomization ("owner computes", Sections 1/10).
//
// Two of the paper's acknowledged limitations point at the same remedy:
//   * "Adapting the algorithm to the distributed memory setting is not
//     straightforward ... a more limited form of randomization should be
//     used";
//   * "Our algorithm also tends to generate much more cache misses than
//     classical asynchronous methods for structured matrices ... it may be
//     possible to circumvent this using a more restricted form of
//     randomization."
//
// This bench compares the shared scope (any worker updates any coordinate)
// against the owner-computes scope (worker w draws only from its contiguous
// partition) on a *structured* matrix (3-D Laplacian, where locality pays)
// and on the unstructured Gram matrix (where it cannot), reporting sweep
// throughput and the residual after a fixed budget.
#include <iostream>

#include "bench_common.hpp"

using namespace asyrgs;
using namespace asyrgs::bench;

int main(int argc, char** argv) {
  CliParser cli("ablation_ownership",
                "shared vs owner-computes randomization (cache locality)");
  auto sweeps = cli.add_int("sweeps", 40, "sweep budget per run");
  auto threads = cli.add_int("threads", 0, "worker threads (0 = all)");
  auto grid = cli.add_int("grid", 28, "3-D Laplacian grid side");
  auto repeats = cli.add_int("repeats", 3, "timing repetitions (min)");
  cli.parse(argc, argv);

  print_banner("ablation_ownership",
               "Sections 1/10 restricted-randomization extension");
  ThreadPool& pool = ThreadPool::global();
  const int workers = *threads > 0 ? static_cast<int>(*threads) : pool.size();

  struct Case {
    std::string label;
    CsrMatrix matrix;
  };
  std::vector<Case> cases;
  cases.push_back({"laplacian_3d", laplacian_3d(*grid, *grid, *grid)});
  {
    SocialGramOptions gopt;
    gopt.terms = 3000;
    gopt.documents = 12000;
    gopt.ridge = 0.5;
    gopt.topics = 100;
    gopt.topic_concentration = 0.92;
    cases.push_back({"social_gram", make_social_gram(gopt).gram});
  }

  Table table({"matrix", "scope", "time_per_sweep_ms", "rel_residual",
               "speed_vs_shared"});
  for (const Case& c : cases) {
    const std::vector<double> x_star = random_vector(c.matrix.rows(), 3);
    const std::vector<double> b = rhs_from_solution(c.matrix, x_star);

    double shared_time = 0.0;
    for (RandomizationScope scope :
         {RandomizationScope::kShared, RandomizationScope::kOwnerComputes}) {
      double best = 1e300;
      double residual = 0.0;
      for (int rep = 0; rep < *repeats; ++rep) {
        std::vector<double> x(c.matrix.rows(), 0.0);
        AsyncRgsOptions opt;
        opt.sweeps = static_cast<int>(*sweeps);
        opt.workers = workers;
        opt.seed = 1;
        opt.scope = scope;
        const AsyncRgsReport r = async_rgs_solve(pool, c.matrix, b, x, opt);
        best = std::min(best, r.seconds);
        residual = relative_residual(c.matrix, b, x);
      }
      const double per_sweep_ms = best / static_cast<double>(*sweeps) * 1e3;
      if (scope == RandomizationScope::kShared) shared_time = best;
      table.add_row({c.label,
                     scope == RandomizationScope::kShared ? "shared"
                                                          : "owner-computes",
                     fmt_fixed(per_sweep_ms, 3), fmt_sci(residual, 2),
                     fmt_fixed(shared_time / best, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "# shape check: owner-computes speeds up the structured "
               "matrix (locality) more than the unstructured Gram,\n"
            << "# at equal sweep counts and comparable accuracy — the "
               "restricted randomization the paper proposes.\n";
  return 0;
}
