// Error and residual norms.
//
// The paper measures convergence in two ways:
//  * the A-norm of the error, ||x - x*||_A = sqrt((x-x*)^T A (x-x*)), which
//    is the quantity the theory bounds (E_m = E[||x_m - x*||_A^2]);
//  * the relative residual ||b - A x||_2 / ||b||_2 (and its Frobenius
//    analogue for 51 simultaneous systems), "as is typically done in
//    iterative methods" (Section 3).
#pragma once

#include <vector>

#include "asyrgs/linalg/multivector.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// sqrt(x^T A x); A must be SPD for this to be a norm.
[[nodiscard]] double a_norm(const CsrMatrix& a, const std::vector<double>& x);

/// ||x - x*||_A.
[[nodiscard]] double a_norm_error(const CsrMatrix& a,
                                  const std::vector<double>& x,
                                  const std::vector<double>& x_star);

/// ||b - A x||_2.
[[nodiscard]] double residual_norm(const CsrMatrix& a,
                                   const std::vector<double>& b,
                                   const std::vector<double>& x);

/// ||b - A x||_2 / ||b||_2 (returns the absolute norm when ||b|| == 0).
[[nodiscard]] double relative_residual(const CsrMatrix& a,
                                       const std::vector<double>& b,
                                       const std::vector<double>& x);

/// ||B - A X||_F / ||B||_F over a block of systems (the paper's Figure 1/2
/// metric for the 51-column system).
[[nodiscard]] double relative_residual_block(ThreadPool& pool,
                                             const CsrMatrix& a,
                                             const MultiVector& b,
                                             const MultiVector& x);

/// Relative A-norm error ||x - x*||_A / ||x*||_A (Figure 2, right).
[[nodiscard]] double relative_a_norm_error(const CsrMatrix& a,
                                           const std::vector<double>& x,
                                           const std::vector<double>& x_star);

}  // namespace asyrgs
