#include "asyrgs/gen/partition.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace asyrgs {

namespace {

/// Off-diagonal degree of row i (self loops carry no adjacency).
index_t degree(const CsrMatrix& a, index_t i) {
  const auto cols = a.row_cols(i);
  index_t d = static_cast<index_t>(cols.size());
  for (const auto c : cols)
    if (static_cast<index_t>(c) == i) --d;
  return d;
}

/// BFS from `start` over unvisited vertices, visiting neighbours in
/// increasing-degree order (the Cuthill-McKee visit rule).  Appends the
/// component's vertices to `order` in visit order, marks them visited, and
/// reports the last level's first vertex and the eccentricity — the inputs
/// the pseudo-peripheral search needs.
struct BfsResult {
  index_t far_vertex;
  index_t levels;
  std::size_t first_appended;  ///< order.size() before this component ran
};

BfsResult cm_bfs(const CsrMatrix& a, const std::vector<index_t>& deg,
                 index_t start, std::vector<char>& visited,
                 std::vector<index_t>& order,
                 std::vector<index_t>& neighbour_scratch) {
  BfsResult res{start, 0, order.size()};
  visited[static_cast<std::size_t>(start)] = 1;
  order.push_back(start);
  std::size_t level_begin = res.first_appended;
  while (level_begin < order.size()) {
    const std::size_t level_end = order.size();
    for (std::size_t q = level_begin; q < level_end; ++q) {
      const index_t u = order[q];
      neighbour_scratch.clear();
      for (const auto c : a.row_cols(u)) {
        const index_t v = static_cast<index_t>(c);
        if (v == u || visited[static_cast<std::size_t>(v)]) continue;
        visited[static_cast<std::size_t>(v)] = 1;
        neighbour_scratch.push_back(v);
      }
      std::sort(neighbour_scratch.begin(), neighbour_scratch.end(),
                [&deg](index_t x, index_t y) {
                  const index_t dx = deg[static_cast<std::size_t>(x)];
                  const index_t dy = deg[static_cast<std::size_t>(y)];
                  return dx != dy ? dx < dy : x < y;
                });
      for (const index_t v : neighbour_scratch) order.push_back(v);
    }
    if (level_end < order.size()) {
      ++res.levels;
      res.far_vertex = order[level_end];
    }
    level_begin = level_end;
  }
  return res;
}

}  // namespace

std::vector<index_t> rcm_order(const CsrMatrix& a) {
  require(a.square(), "rcm_order: matrix must be square");
  const index_t n = a.rows();
  std::vector<index_t> deg(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    deg[static_cast<std::size_t>(i)] = degree(a, i);

  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> scratch;

  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    if (deg[static_cast<std::size_t>(seed)] == 0) {
      // Isolated vertex: no probing needed (and a diagonal-heavy matrix
      // would otherwise pay two O(n) visited-copies per singleton).
      visited[static_cast<std::size_t>(seed)] = 1;
      order.push_back(seed);
      continue;
    }
    // Pseudo-peripheral start (George-Liu): BFS from the component's first
    // unvisited vertex, then restart from the farthest vertex found — two
    // passes get within a level or two of the true diameter, which is all
    // the bandwidth profile needs.
    std::vector<char> probe = visited;
    std::vector<index_t> probe_order;
    const BfsResult pass1 =
        cm_bfs(a, deg, seed, probe, probe_order, scratch);
    index_t start = pass1.far_vertex;
    if (start != seed) {
      probe = visited;
      probe_order.clear();
      const BfsResult pass2 =
          cm_bfs(a, deg, start, probe, probe_order, scratch);
      if (pass2.levels > pass1.levels) start = pass2.far_vertex;
    }
    cm_bfs(a, deg, start, visited, order, scratch);
  }
  // Reverse the concatenated Cuthill-McKee order.  Components are disjoint,
  // so reversing the whole sequence reverses each component's order without
  // interleaving them.
  std::reverse(order.begin(), order.end());
  return order;
}

CsrMatrix permute_symmetric(const CsrMatrix& a,
                            const std::vector<index_t>& perm) {
  require(a.square(), "permute_symmetric: matrix must be square");
  const index_t n = a.rows();
  require(static_cast<index_t>(perm.size()) == n,
          "permute_symmetric: perm size must match the matrix dimension");
  std::vector<index_t> inv(static_cast<std::size_t>(n), -1);
  for (index_t i = 0; i < n; ++i) {
    const index_t o = perm[static_cast<std::size_t>(i)];
    require(o >= 0 && o < n && inv[static_cast<std::size_t>(o)] < 0,
            "permute_symmetric: perm must be a permutation of [0, n)");
    inv[static_cast<std::size_t>(o)] = i;
  }

  std::vector<nnz_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i)
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] +
        static_cast<nnz_t>(a.row_cols(perm[static_cast<std::size_t>(i)]).size());
  const std::size_t nnz = static_cast<std::size_t>(row_ptr.back());
  std::vector<index_t> col_idx(nnz);
  std::vector<double> values(nnz);
  std::vector<std::pair<index_t, double>> entries;
  for (index_t i = 0; i < n; ++i) {
    const index_t o = perm[static_cast<std::size_t>(i)];
    const auto cols = a.row_cols(o);
    const auto vals = a.row_vals(o);
    entries.clear();
    entries.reserve(cols.size());
    for (std::size_t s = 0; s < cols.size(); ++s)
      entries.emplace_back(
          inv[static_cast<std::size_t>(static_cast<index_t>(cols[s]))],
          vals[s]);
    std::sort(entries.begin(), entries.end());
    const std::size_t base =
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
    for (std::size_t s = 0; s < entries.size(); ++s) {
      col_idx[base + s] = entries[s].first;
      values[base + s] = entries[s].second;
    }
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

GraphPartition cut_rows(const CsrMatrix& permuted, int count) {
  const index_t n = permuted.rows();
  if (count < 1) count = 1;
  if (static_cast<index_t>(count) > n) count = static_cast<int>(n);

  GraphPartition part;
  part.lo.resize(static_cast<std::size_t>(count) + 1);
  part.lo.front() = 0;
  part.lo.back() = n;
  // Balance by nonzeros (update cost is proportional to row length, not row
  // count), then round every interior boundary UP to the cache-line
  // multiple so owned iterate slices never share a line.
  const nnz_t total = permuted.nnz();
  const nnz_t* row_ptr = permuted.row_ptr().data();
  index_t row = 0;
  for (int p = 1; p < count; ++p) {
    const nnz_t target =
        (total * static_cast<nnz_t>(p)) / static_cast<nnz_t>(count);
    while (row < n && row_ptr[row] < target) ++row;
    index_t boundary =
        ((row + kPartitionAlignRows - 1) / kPartitionAlignRows) *
        kPartitionAlignRows;
    const index_t prev = part.lo[static_cast<std::size_t>(p) - 1];
    if (boundary < prev) boundary = prev;
    if (boundary > n) boundary = n;
    part.lo[static_cast<std::size_t>(p)] = boundary;
  }

  // Halos: for each partition, every neighbour (graph edge endpoint) that
  // falls outside the owned range.  One pass over the nonzeros; dedup by
  // sort+unique per partition (halo sizes are O(boundary surface), tiny
  // next to nnz).
  part.halo.resize(static_cast<std::size_t>(count));
  for (int p = 0; p < count; ++p) {
    const index_t lo = part.lo_of(p);
    const index_t hi = lo + part.size_of(p);
    std::vector<index_t>& halo = part.halo[static_cast<std::size_t>(p)];
    for (index_t i = lo; i < hi; ++i)
      for (const auto c : permuted.row_cols(i)) {
        const index_t v = static_cast<index_t>(c);
        if (v < lo || v >= hi) halo.push_back(v);
      }
    std::sort(halo.begin(), halo.end());
    halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
    halo.shrink_to_fit();
  }
  return part;
}

PartitionAnalysis::PartitionAnalysis(const CsrMatrix& a)
    : perm_(rcm_order(a)),
      inv_perm_(static_cast<std::size_t>(a.rows())),
      permuted_(permute_symmetric(a, perm_)) {
  for (index_t i = 0; i < a.rows(); ++i)
    inv_perm_[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])] =
        i;
}

std::shared_ptr<const GraphPartition> PartitionAnalysis::cut(int count) const {
  if (count < 1) count = 1;
  if (static_cast<index_t>(count) > permuted_.rows())
    count = static_cast<int>(permuted_.rows());
  const std::scoped_lock lock(mutex_);
  auto it = cuts_.find(count);
  if (it != cuts_.end()) return it->second;
  auto cut = std::make_shared<const GraphPartition>(cut_rows(permuted_, count));
  cuts_.emplace(count, cut);
  return cut;
}

}  // namespace asyrgs
