// Scan-mode suite (PR 3): the opt-in fast-math row scan and the invariants
// it must and must not preserve.
//
//  (a) The default path is pinned and stays bit-exact: ScanMode::kPinned is
//      the default everywhere, and a pinned run is bit-identical to the
//      sequential reference (the contract the PR-2 determinism suite gates).
//  (b) The reassociated kernels compute the same sums up to rounding (they
//      reassociate, never approximate), and the reassociated solvers
//      converge to the same residual tolerance at 1, 2, and 4 workers.
//  (c) Scan mode never touches direction planning: the engine consumes the
//      identical direction multiset in both modes.
//  Plus the oversubscription heuristic for team-parallel residuals.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "asyrgs/core/async_lsq.hpp"
#include "asyrgs/core/engine.hpp"
#include "asyrgs/core/rgs.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/solve.hpp"
#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {
namespace {

// --- (a) pinned is the default and stays bit-exact ---------------------------

TEST(ScanModeDefault, PinnedEverywhere) {
  EXPECT_EQ(AsyncRgsOptions{}.scan, ScanMode::kPinned);
  EXPECT_EQ(SpdSolveOptions{}.scan, ScanMode::kPinned);
}

TEST(ScanModeDefault, PinnedSingleWorkerStaysBitExact) {
  // Identical to the determinism-suite contract, asserted here against an
  // options struct that names the mode explicitly, so a future default flip
  // would fail this test and not just silently weaken the other suite.
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(9, 9);
  const std::vector<double> b = random_vector(a.rows(), 3);

  RgsOptions seq;
  seq.sweeps = 30;
  seq.seed = 11;
  std::vector<double> x_seq(a.rows(), 0.0);
  rgs_solve(a, b, x_seq, seq);

  std::vector<double> x_async(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 30;
  opt.seed = 11;
  opt.workers = 1;
  opt.scan = ScanMode::kPinned;
  async_rgs_solve(pool, a, b, x_async, opt);
  EXPECT_EQ(x_seq, x_async);
}

// --- (b) reassociated kernels: same sum up to rounding ----------------------

/// Random CSR-like row over a dense operand of size n.
struct RowFixture {
  std::vector<index_t> cols;
  std::vector<double> vals;
  std::vector<double> x;
};

RowFixture make_row(nnz_t len, index_t n, std::uint64_t seed) {
  RowFixture f;
  Xoshiro256 rng(seed);
  f.x.resize(static_cast<std::size_t>(n));
  for (double& v : f.x) v = normal(rng);
  for (nnz_t t = 0; t < len; ++t) {
    f.cols.push_back(uniform_index(rng, n));
    f.vals.push_back(normal(rng));
  }
  std::sort(f.cols.begin(), f.cols.end());
  return f;
}

TEST(ReassocKernels, MatchPinnedUpToRounding) {
  // Every length from 0 through 70 crosses all dispatch boundaries: the
  // scalar multi-accumulator path (< 16), the 8/16-wide vector bodies, and
  // the masked/scalar tails of every width.
  for (nnz_t len = 0; len <= 70; ++len) {
    const RowFixture f = make_row(len, 977, 1000 + static_cast<std::uint64_t>(len));
    const double pinned = csr_row_dot(f.cols.data(), f.vals.data(), len,
                                      f.x.data());
    const double reassoc = csr_row_dot_reassoc(f.cols.data(), f.vals.data(),
                                               len, f.x.data());
    // Bound the reassociation error by the classical |sum| <= len * eps *
    // sum|terms| envelope (loose by design; any true error is orders of
    // magnitude larger).
    double abs_sum = 0.0;
    for (nnz_t t = 0; t < len; ++t)
      abs_sum += std::abs(f.vals[t] * f.x[f.cols[t]]);
    const double tol =
        static_cast<double>(len + 1) * 4e-16 * std::max(abs_sum, 1.0);
    EXPECT_NEAR(pinned, reassoc, tol) << "len=" << len;
  }
}

TEST(ReassocKernels, SubDotConsistentWithDot) {
  const nnz_t len = 53;
  const RowFixture f = make_row(len, 500, 99);
  const double acc = 3.25;
  EXPECT_EQ(csr_row_sub_dot_reassoc(acc, f.cols.data(), f.vals.data(), len,
                                    f.x.data()),
            acc - csr_row_dot_reassoc(f.cols.data(), f.vals.data(), len,
                                      f.x.data()));
}

TEST(ReassocKernels, EmptyAndSingleEntryRows) {
  const RowFixture f = make_row(1, 10, 7);
  EXPECT_EQ(csr_row_dot_reassoc(f.cols.data(), f.vals.data(), 0, f.x.data()),
            0.0);
  EXPECT_EQ(csr_row_dot_reassoc(f.cols.data(), f.vals.data(), 1, f.x.data()),
            f.vals[0] * f.x[f.cols[0]]);
}

// --- (b) reassociated solvers converge across worker counts ------------------

TEST(ScanModeConvergence, ReassociatedReachesToleranceAcrossWorkerCounts) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(14, 14);
  const std::vector<double> x_star = random_vector(a.rows(), 5);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  for (int workers : {1, 2, 4}) {
    std::vector<double> x(a.rows(), 0.0);
    AsyncRgsOptions opt;
    opt.sweeps = 4000;
    opt.seed = 17;
    opt.workers = workers;
    opt.sync = SyncMode::kBarrierPerSweep;
    opt.scan = ScanMode::kReassociated;
    opt.rel_tol = 1e-8;
    const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
    EXPECT_TRUE(rep.converged) << "workers=" << workers;
    EXPECT_LE(rep.final_relative_residual, 1e-8) << "workers=" << workers;
  }
}

TEST(ScanModeConvergence, ReassociatedLsqReachesTolerance) {
  ThreadPool pool(2);
  CooBuilder builder(60, 25);
  Xoshiro256 rng(3);
  for (index_t i = 0; i < 60; ++i) {
    builder.add(i, i % 25, 1.0 + uniform_real(rng));
    for (int t = 0; t < 3; ++t)
      builder.add(i, uniform_index(rng, 25), normal(rng) * 0.3);
  }
  const CsrMatrix a = builder.to_csr();
  const std::vector<double> x_star = random_vector(25, 8);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  std::vector<double> x(25, 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 6000;
  opt.seed = 9;
  opt.workers = 2;
  opt.step_size = 0.9;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.scan = ScanMode::kReassociated;
  opt.rel_tol = 1e-8;
  const AsyncRgsReport rep = async_lsq_solve(pool, a, b, x, opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.final_relative_residual, 1e-8);
}

TEST(ScanModeConvergence, SolveSpdPlumbsReassociated) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(10, 10);
  const std::vector<double> x_star = random_vector(a.rows(), 2);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  std::vector<double> x(a.rows(), 0.0);
  SpdSolveOptions opt;
  opt.rel_tol = 1e-3;  // kAuto -> AsyRGS (the asynchronous path)
  opt.scan = ScanMode::kReassociated;
  opt.seed = 4;
  const SpdSolveSummary s = solve_spd(pool, a, b, x, opt);
  EXPECT_EQ(s.method_used, SpdMethod::kAsyncRgs);
  EXPECT_TRUE(s.converged);
  EXPECT_LE(s.relative_residual, 1e-3);
}

// --- (c) the direction multiset is scan-mode independent ---------------------

struct RecordingUpdate {
  std::vector<std::vector<index_t>>* per_worker;
  void operator()(int id, index_t r, index_t) const {
    (*per_worker)[static_cast<std::size_t>(id)].push_back(r);
  }
};

TEST(ScanModeDirections, MultisetUnchangedByScanMode) {
  ThreadPool pool(4);
  const index_t n = 83;
  std::vector<std::vector<index_t>> multisets;
  for (ScanMode scan : {ScanMode::kPinned, ScanMode::kReassociated}) {
    AsyncRgsOptions opt;
    opt.seed = 29;
    opt.sweeps = 40;
    opt.workers = 3;
    opt.scan = scan;
    std::vector<std::vector<index_t>> per_worker(3);
    AsyncRgsReport report;
    auto residual = [](int, int) { return 0.0; };
    detail::run_engine(pool, opt, n, 3, RecordingUpdate{&per_worker},
                       residual, report);
    std::vector<index_t> all;
    for (const auto& v : per_worker)
      all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    multisets.push_back(std::move(all));
  }
  EXPECT_EQ(multisets[0], multisets[1]);
}

// --- team-residual oversubscription heuristic --------------------------------

TEST(TeamResidualHeuristic, SerialOnlyWhenOversubscribed) {
  // Parallel residual whenever the host can actually schedule the team...
  EXPECT_TRUE(detail::team_residual_profitable(4, 4));
  EXPECT_TRUE(detail::team_residual_profitable(4, 8));
  EXPECT_TRUE(detail::team_residual_profitable(2, 2));
  // ...or the hardware count is unknown (0), or the team is trivial.
  EXPECT_TRUE(detail::team_residual_profitable(4, 0));
  EXPECT_TRUE(detail::team_residual_profitable(1, 1));
  EXPECT_TRUE(detail::team_residual_profitable(0, 1));
  // Serial fallback exactly when workers outnumber hardware threads.
  EXPECT_FALSE(detail::team_residual_profitable(2, 1));
  EXPECT_FALSE(detail::team_residual_profitable(4, 1));
  EXPECT_FALSE(detail::team_residual_profitable(8, 4));
}

TEST(TeamResidualHeuristic, ResidualValuesAgreeAcrossWorkerCounts) {
  // Whichever path the host selects, the reported residual must match the
  // serial ground truth to reduction-rounding accuracy.  (On 1-hardware-
  // thread CI this exercises the serial fallback; on multicore hosts the
  // team-parallel reduction.)
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(10, 10);
  const std::vector<double> x_star = random_vector(a.rows(), 6);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  double residual_1 = -1.0;
  for (int workers : {1, 4}) {
    std::vector<double> x(a.rows(), 0.0);
    AsyncRgsOptions opt;
    opt.sweeps = 25;
    opt.seed = 77;
    opt.workers = workers;
    opt.sync = SyncMode::kBarrierPerSweep;
    opt.track_history = true;
    const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
    ASSERT_EQ(rep.residual_history.size(),
              static_cast<std::size_t>(rep.sweeps_done));
    // Different worker counts interleave updates differently, so compare
    // each report against its own iterate, not across runs.
    std::vector<double> r(a.rows());
    a.multiply(x.data(), r.data());
    double num = 0.0, den = 0.0;
    for (index_t i = 0; i < a.rows(); ++i) {
      const double ri = b[i] - r[i];
      num += ri * ri;
      den += b[i] * b[i];
    }
    const double expect = std::sqrt(num) / std::sqrt(den);
    EXPECT_NEAR(rep.final_relative_residual, expect, 1e-12 + 1e-9 * expect)
        << "workers=" << workers;
    if (workers == 1) residual_1 = rep.final_relative_residual;
  }
  EXPECT_GE(residual_1, 0.0);
}

}  // namespace
}  // namespace asyrgs
