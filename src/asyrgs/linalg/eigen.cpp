#include "asyrgs/linalg/eigen.hpp"

#include <cmath>

#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/lanczos.hpp"
#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/spmv.hpp"

namespace asyrgs {

PowerMethodResult power_method(ThreadPool& pool, const CsrMatrix& a,
                               int max_iters, double tol, std::uint64_t seed) {
  require(a.square(), "power_method: matrix must be square");
  const index_t n = a.rows();
  PowerMethodResult result;

  std::vector<double> x = random_vector(n, seed);
  scal(1.0 / nrm2(x), x);
  std::vector<double> y(static_cast<std::size_t>(n));

  double prev = 0.0;
  for (int it = 1; it <= max_iters; ++it) {
    spmv(pool, a, x.data(), y.data());
    const double rayleigh = dot(x, y);  // x is unit-norm
    result.iterations = it;
    result.lambda_max = rayleigh;
    if (it > 1 &&
        std::abs(rayleigh - prev) <= tol * std::max(std::abs(rayleigh), 1.0)) {
      result.converged = true;
      break;
    }
    prev = rayleigh;
    const double norm = nrm2(y);
    if (norm == 0.0) break;  // x in the null space; restart not needed for SPD
    for (index_t i = 0; i < n; ++i) x[i] = y[i] / norm;
  }
  return result;
}

SpectrumEstimate estimate_spectrum(ThreadPool& pool, const CsrMatrix& a,
                                   int lanczos_steps, std::uint64_t seed) {
  const LanczosResult lz = lanczos_extreme(pool, a, lanczos_steps, seed);
  SpectrumEstimate est;
  est.lambda_min = lz.lambda_min;
  est.lambda_max = lz.lambda_max;
  est.condition = lz.lambda_min > 0.0 ? lz.lambda_max / lz.lambda_min : 0.0;
  return est;
}

}  // namespace asyrgs
