// Prepared-solver handles: pay matrix analysis once, solve many times.
//
// The paper's methodology (and its motivating big-data workload, Section 9)
// fixes the matrix and varies only the right-hand side, worker count, and
// synchronization regime.  A server answering many solves against one
// operator should therefore pay per-matrix costs — symmetry/diagonal
// validation, transpose materialization, diagonal reciprocals, column-norm
// denominators, per-worker scratch — exactly once.  This header provides
// that split:
//
//   SpdProblem / LsqProblem   per-problem state: matrix + attached pool +
//                             cached analysis + reusable solver scratch
//   SolveControls             per-call knobs: method, tolerance, seed,
//                             workers, sync/scope/scan, step size
//   SolveOutcome              unified structured result (SolveStatus enum
//                             instead of per-solver bool/string shapes)
//
// The legacy free functions (async_rgs_solve, async_lsq_solve, solve_spd,
// ...) remain available and are thin wrappers constructing a temporary
// handle — identical arithmetic, so equal-seed pinned-scan runs through
// either interface are bit-identical.
//
// Thread-safety: a handle's prepared state is immutable after construction
// and its mutable scratch is guarded by an internal (recursive) mutex —
// concurrent solve() calls on one handle from different threads are safe and
// are serialized, running one after another (the attached ThreadPool hosts
// one team at a time anyway).  For genuinely parallel solves use one handle
// per pool.  The bound CsrMatrix and ThreadPool must outlive the handle.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/linalg/multivector.hpp"
#include "asyrgs/sampling/direction_sampler.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// Solution strategy for SPD problems (kAuto picks by accuracy target: plain
/// AsyRGS in the low-accuracy regime where basic iterations shine, AsyRGS as
/// a flexible-CG preconditioner when high accuracy is sought — the paper's
/// Section 9 guidance).
enum class SpdMethod {
  kAuto,      ///< pick by accuracy target (see SpdProblem::solve docs)
  kAsyncRgs,  ///< asynchronous randomized Gauss-Seidel
  kFcgAsyRgs, ///< flexible CG preconditioned by AsyRGS
  kCg,        ///< plain conjugate gradients (synchronous baseline)
  /// Asynchronous row-action Kaczmarz on the shared engine: directions are
  /// rows, each update projects x onto its row's hyperplane (relaxed by
  /// beta).  Served by LsqProblem — it needs no symmetry and handles
  /// rectangular and inconsistent systems; SpdProblem::solve rejects it
  /// with a pointer there.
  kAsyncKaczmarz,
};

/// How a solve ended — the structured replacement for the per-solver
/// `bool converged` / description-string conventions.
enum class SolveStatus {
  /// The requested relative-residual tolerance was reached.
  kConverged,
  /// A tolerance was requested (rel_tol > 0 under a synchronizing mode, or
  /// a Krylov method) but the iteration budget ran out first.
  kToleranceNotReached,
  /// The fixed iteration budget ran to completion with no tolerance in
  /// play (free-running asynchronous runs, or rel_tol == 0).
  kBudgetCompleted,
  /// The request never ran: a serving layer declined it (queue at
  /// ServiceOptions::max_queue, submit racing shutdown, or a deadline that
  /// expired while queued).  Direct handle solves never produce this; the
  /// ticket's `description` names the reason.  See serve/service.hpp.
  kRejected,
};

/// Human-readable status name ("converged", "tolerance-not-reached",
/// "budget-completed", "rejected").
[[nodiscard]] const char* to_string(SolveStatus status) noexcept;

/// Requested CSR storage policy for a prepared handle, resolved once at
/// construction (see resolve_storage_policy for the exact rules).  The
/// narrow policies build a compact copy of the bound matrix at preparation
/// time — int32 column indices halve the index bandwidth of every row scan,
/// and kInt32Mixed additionally halves the value bandwidth (accumulation
/// stays double; see docs/TUNING.md for when each wins).  Pinned-scan
/// int32/double arithmetic is bit-identical to full width, which is why
/// kAuto may narrow by default without breaking reproducibility contracts.
enum class StorageMode {
  kAuto,         ///< int32/double when the shape fits, else full width
  kInt64Double,  ///< full width; no compact copy is built
  kInt32Double,  ///< compact indices; falls back to full width on overflow
  kInt32Mixed,   ///< compact indices + float values, double accumulation
};

/// Human-readable mode name ("auto", "int64_double", "int32_double",
/// "int32_mixed").
[[nodiscard]] const char* to_string(StorageMode mode) noexcept;

/// Resolves a storage request against the widest coordinate a policy's
/// index type must represent (`max_index` = cols() for SPD handles; for
/// least-squares handles max(rows(), cols()), because the transpose's
/// column indices are row indices) and the matrix's nonzero count.  kAuto
/// narrows whenever both fit int32; an explicit narrow request that does
/// not fit falls back to kInt64Double and reports it through `*fell_back`
/// (surfaced as ProblemStats::storage_fallbacks).  The nnz guard is
/// deliberately conservative: the compact row-pointer array physically
/// stays 64-bit, but a matrix whose nnz overflows int32 is far past the
/// regime where index narrowing pays, and refusing it keeps every count
/// derived from the compact copy (row extents, per-partition nnz) safely
/// inside 32-bit arithmetic.  Exposed separately so both overflow guards
/// are testable by shape arithmetic alone — exercising the fallback
/// through a real handle would require materializing a > 2^31-entry
/// operator.
[[nodiscard]] StoragePolicy resolve_storage_policy(
    StorageMode mode, index_t max_index, nnz_t nnz,
    bool* fell_back = nullptr) noexcept;

/// Per-call knobs for a prepared handle, deliberately separated from the
/// per-problem state (matrix, pool, validation policy) bound at handle
/// construction.  Field-for-field compatible with AsyncRgsOptions for the
/// asynchronous methods — see to_controls / to_async_rgs_options.
struct SolveControls {
  /// Solution strategy.  LsqProblem accepts kAuto/kAsyncRgs (randomized
  /// coordinate descent) and kAsyncKaczmarz (row action); SpdProblem
  /// accepts everything but kAsyncKaczmarz.
  SpdMethod method = SpdMethod::kAuto;
  /// Sweep budget for the asynchronous/randomized methods (one sweep = n
  /// coordinate updates across the team).
  int sweeps = 10;
  /// Outer-iteration cap for the Krylov methods (kCg / kFcgAsyRgs);
  /// 0 = auto (10000).
  int max_iterations = 0;
  double step_size = 1.0;    ///< beta; Theorems 3-5 want beta < 1 for bounds
  std::uint64_t seed = 1;    ///< keys the Philox direction stream
  int workers = 0;           ///< team size; 0 = pool capacity
  bool atomic_writes = true; ///< false = racy "non atomic" variant
  SyncMode sync = SyncMode::kFreeRunning;
  RandomizationScope scope = RandomizationScope::kShared;
  ScanMode scan = ScanMode::kPinned;
  double sync_interval_seconds = 0.05;  ///< kTimedBarrier rendezvous cadence
  bool track_history = false;
  /// Target on the method's convergence metric (relative residual; normal
  /// equations residual for least squares).  0 disables tolerance stopping.
  double rel_tol = 0.0;
  /// kFcgAsyRgs only: AsyRGS sweeps per preconditioner application.
  int inner_sweeps = 2;
  /// Direction-draw distribution for the asynchronous methods (see
  /// sampling/direction_sampler.hpp).  kUniform is the paper's setting and
  /// bit-identical to the pre-sampling engine.  Non-uniform policies
  /// require RandomizationScope::kShared; kResidual additionally requires
  /// a synchronizing mode (its table refreshes at rendezvous) and the
  /// single-RHS paths.  The Krylov methods reject non-uniform policies —
  /// they draw no random directions.
  SamplingPolicy sampling = SamplingPolicy::kUniform;
  /// kResidual only: rebuild the residual-weighted table every this many
  /// synchronization rendezvous (sweeps under kBarrierPerSweep, rounds
  /// under kTimedBarrier).  Must be >= 1; see docs/TUNING.md for sizing.
  int resample_sweeps = 8;
  /// Topology-aware partitioned scheduling (SpdProblem single-RHS AsyRGS
  /// only).  0 = off (the paper's any-worker-any-coordinate model).  >= 1
  /// reorders the operator by reverse Cuthill-McKee, cuts it into this many
  /// cache-line-aligned partitions balanced by nonzeros, and has each
  /// worker draw only from the partitions it owns plus their halos — the
  /// locality layer for graph-Laplacian scale (docs/TUNING.md).  Clamped to
  /// the dimension; the clamp is surfaced as SolveOutcome::partitions_used.
  /// Requires kUniform sampling and RandomizationScope::kShared.
  int partitions = 0;
  /// Probability in [0, 1) that a partitioned draw steals a halo row
  /// (a neighbour-owned boundary row) instead of an owned row — the
  /// cross-partition coupling knob.  Liu-Wright-style restricted sampling:
  /// 0 is pure owner-computes; a few percent restores the information flow
  /// across cuts that the convergence theory leans on.  Requires
  /// partitions >= 1.
  double steal_rate = 0.0;
};

/// Unified result of a handle solve.
struct SolveOutcome {
  SolveStatus status = SolveStatus::kBudgetCompleted;
  /// Resolved strategy (SpdProblem methods; for LsqProblem kAsyncRgs =
  /// coordinate descent, kAsyncKaczmarz = row action).
  SpdMethod method_used = SpdMethod::kAuto;
  int iterations = 0;        ///< sweeps or outer iterations, per method
  long long updates = 0;     ///< coordinate updates (asynchronous methods)
  int workers = 0;           ///< actual team size used
  double relative_residual = 0.0;  ///< when a tolerance/history was active
  double seconds = 0.0;      ///< iteration-loop wall time
  ScanMode scan_requested = ScanMode::kPinned;
  /// Association the kernels actually ran; differs from scan_requested only
  /// for the block solver at more than four right-hand sides, whose
  /// column-parallel inner loops run the pinned scan (k <= 4 dispatches the
  /// reassociated register-resident kernel; see docs/TUNING.md).
  ScanMode scan_executed = ScanMode::kPinned;
  /// CSR storage policy the kernels actually ran against — the handle's
  /// resolved policy for the asynchronous methods, kInt64Double for the
  /// Krylov outer methods (which always read the bound full-width matrix).
  StoragePolicy storage_used = StoragePolicy::kInt64Double;
  /// Direction-draw distribution the run used (kUniform for the Krylov
  /// methods, which draw no directions).
  SamplingPolicy sampling_used = SamplingPolicy::kUniform;
  /// Partition count the run actually used (SolveControls::partitions after
  /// clamping to the dimension); 0 = unpartitioned scheduling.
  int partitions_used = 0;
  /// Halo steal probability the partitioned run used (0 when unpartitioned).
  double steal_rate_used = 0.0;
  std::vector<double> residual_history;  ///< per synchronization, if tracked
  std::string description;   ///< human-readable method/mode summary

  [[nodiscard]] bool converged() const noexcept {
    return status == SolveStatus::kConverged;
  }
};

/// Lossless translation between the legacy per-call option struct and
/// SolveControls (the free-function wrappers use these; handy for migration).
[[nodiscard]] SolveControls to_controls(const AsyncRgsOptions& options);
[[nodiscard]] AsyncRgsOptions to_async_rgs_options(
    const SolveControls& controls);

namespace detail {
/// Translates a handle outcome back to the legacy AsyncRgsReport shape; used
/// by the free-function wrappers so both report forms stay in lockstep.
[[nodiscard]] AsyncRgsReport report_from_outcome(SolveOutcome&& out);

/// Reusable per-handle solver scratch (rhs packing, engine buffers); defined
/// in problem.cpp so the unstable engine/kernel internals never enter this
/// public header.
struct ProblemScratch;

/// Prepare-time partition analysis for SpdProblem (RCM permutation, the
/// permuted operator — narrowed per the handle's storage policy — and its
/// permuted diagonal reciprocals); defined in problem.cpp.  Immutable once
/// built, shared between clones like the compact storage copies.
struct SpdPartitionState;
}  // namespace detail

/// Counters of the preparation work a handle has performed — lets tests (and
/// monitoring) assert that analysis is paid once per problem, not per solve.
struct ProblemStats {
  int validation_passes = 0;  ///< symmetry/diagonal/rank checks performed
  int transpose_builds = 0;   ///< explicit A^T constructions triggered
  /// Completed solve() calls, counting inner preconditioner applications:
  /// one kFcgAsyRgs solve contributes 1 + (outer iterations), because each
  /// preconditioner application re-enters solve() on this handle.  The
  /// counter evidences amortization, not requests served.
  long long solves = 0;
  /// Scratch growth events (direction buffers, team-reduce, slabs); a
  /// repeat solve with unchanged shapes/team must not increase this.
  long long scratch_allocations = 0;
  /// Storage policy resolved at preparation (what the asynchronous kernels
  /// run against).
  StoragePolicy storage = StoragePolicy::kInt64Double;
  /// Explicit narrow-storage requests that overflowed the index width and
  /// fell back to full storage (0 or 1 per handle; clones inherit it).
  int storage_fallbacks = 0;
  /// Alias-table build passes paid so far: 1 per lazily cached static
  /// weighted sampler (amortized across solves), plus every residual-policy
  /// build/refresh.  Repeat kWeighted solves must not increase this.
  long long sampler_builds = 0;
  /// RCM partition analyses performed (0 or 1 per handle: built on the
  /// first partitioned solve or prepare_partitions() call and cached;
  /// clones inherit the analysis and report 0).
  int partition_builds = 0;
};

/// Prepared handle for repeated solves of SPD A x = b against one matrix.
///
/// Construction performs all per-matrix analysis: the strictly-positive-
/// diagonal check and reciprocal precomputation always; the symmetry
/// validation (one cached transpose + entrywise compare) when `check_input`
/// is set.  solve() then pays only per-call work.
class SpdProblem {
 public:
  /// Binds `a` (kept by reference; must outlive the handle) and `pool`.
  /// `check_input` validates symmetry up front — recommended for
  /// user-supplied matrices, skippable for generated/trusted ones.
  /// `storage` selects the CSR policy the asynchronous kernels run against
  /// (resolve_storage_policy documents the kAuto/fallback rules); a narrow
  /// policy builds its compact copy here, once, so solves pay none of it.
  SpdProblem(ThreadPool& pool, const CsrMatrix& a, bool check_input = true,
             StorageMode storage = StorageMode::kAuto);

  /// Shard clone: binds `pool` to the matrix of `other` and reuses its
  /// completed analysis (diagonal reciprocals, the symmetry verdict, and —
  /// when already built — the partition analysis) instead of re-validating —
  /// the per-shard construction path of SolverService, where N pools serve
  /// one analyzed matrix.  O(n), no O(nnz) work; the clone's ProblemStats
  /// start at zero validation passes / transpose / partition builds.
  /// `other` must be fully constructed; cloning is safe concurrently with
  /// solves on `other` (the lazily built caches are read under its lock).
  SpdProblem(ThreadPool& pool, const SpdProblem& other);
  ~SpdProblem();  // out-of-line: ProblemScratch is incomplete here

  SpdProblem(const SpdProblem&) = delete;
  SpdProblem& operator=(const SpdProblem&) = delete;

  /// Solves A x = b starting from `x` (in place) with per-call `controls`.
  /// With SpdMethod::kAuto the method is AsyRGS when rel_tol == 0 or
  /// rel_tol >= 1e-4 (the low-accuracy regime) and FCG+AsyRGS otherwise.
  SolveOutcome solve(const std::vector<double>& b, std::vector<double>& x,
                     const SolveControls& controls = {});

  /// Block variant: every coordinate update applies to all columns of X
  /// (the paper's 51-right-hand-side experiment).  Asynchronous only
  /// (method must be kAuto or kAsyncRgs); the block kernel always runs the
  /// pinned scan — scan_executed reports it.
  SolveOutcome solve(const MultiVector& b, MultiVector& x,
                     const SolveControls& controls = {});

  /// Forces the RCM partition analysis now instead of on the first
  /// partitioned solve — the prepare-time hook SolverService uses so shard
  /// clones inherit the analysis and serving never pays it on a request.
  /// Idempotent; counted once in ProblemStats::partition_builds.
  void prepare_partitions();

  [[nodiscard]] const CsrMatrix& matrix() const noexcept { return a_; }
  [[nodiscard]] ThreadPool& pool() const noexcept { return pool_; }
  [[nodiscard]] index_t dimension() const noexcept { return a_.rows(); }
  /// The CSR policy resolved at construction (what the asynchronous solve
  /// paths run against; also in ProblemStats::storage).
  [[nodiscard]] StoragePolicy storage() const noexcept { return storage_; }
  [[nodiscard]] ProblemStats stats() const;

 private:
  friend class AsyRgsPreconditioner;

  /// The cached partition analysis, building it on first use (caller must
  /// hold mutex_).
  const detail::SpdPartitionState& partition_state();

  SolveOutcome solve_async_single(const std::vector<double>& b,
                                  std::vector<double>& x,
                                  const SolveControls& controls);
  SolveOutcome solve_async_partitioned(const std::vector<double>& b,
                                       std::vector<double>& x,
                                       const SolveControls& controls);
  SolveOutcome solve_krylov(const std::vector<double>& b,
                            std::vector<double>& x,
                            const SolveControls& controls, SpdMethod method);
  /// Policy-concrete bodies behind the storage dispatch (problem.cpp).
  template <class Matrix>
  SolveOutcome solve_async_single_on(const Matrix& a,
                                     const std::vector<double>& b,
                                     std::vector<double>& x,
                                     const SolveControls& controls);
  template <class Matrix>
  SolveOutcome solve_async_partitioned_on(const Matrix& a,
                                          const std::vector<double>& b,
                                          std::vector<double>& x,
                                          const SolveControls& controls);
  template <class Matrix>
  SolveOutcome solve_block_on(const Matrix& a, const MultiVector& b,
                              MultiVector& x, const SolveControls& controls);

  ThreadPool& pool_;
  const CsrMatrix& a_;
  /// Compact copies built at preparation when storage_ narrows; at most one
  /// is non-null.  shared_ptr so shard clones alias one copy.
  std::shared_ptr<const CsrMatrix32> a32_;
  std::shared_ptr<const CsrMatrixMixed> amixed_;
  StoragePolicy storage_ = StoragePolicy::kInt64Double;
  std::vector<double> inv_diag_;
  /// kWeighted sampler (weights: squared row norms of the bound full-width
  /// matrix), built lazily on the first weighted solve and cached — guarded
  /// by mutex_ like all mutable solve state.
  std::optional<DirectionSampler> weighted_sampler_;
  /// Partition analysis (RCM order + permuted operator), built lazily on
  /// the first partitioned solve or prepare_partitions() and cached —
  /// mutex_-guarded; clones alias the prototype's state.
  std::shared_ptr<const detail::SpdPartitionState> partition_;
  mutable std::recursive_mutex mutex_;  // recursive: FCG solves re-enter via
                                        // the preconditioner's inner solves
  std::unique_ptr<detail::ProblemScratch> scratch_;
  ProblemStats stats_;
};

/// Prepared handle for repeated least-squares solves min ||A x - b|| against
/// one matrix (asynchronous randomized coordinate descent, Section 8).
///
/// Construction materializes (or borrows) A^T, precomputes the column
/// squared-norm denominators, and validates full column rank — all costs the
/// one-shot API used to pay per call.
class LsqProblem {
 public:
  /// Binds `a` and builds A^T through the matrix's shared transpose cache
  /// (so several handles — or the convenience free function — against one
  /// matrix construct the transpose a single time).  `storage` narrows both
  /// A and A^T; because the transpose's column indices are row indices,
  /// narrowing requires max(rows, cols) to fit the index width (kAuto
  /// checks it, explicit requests fall back — see resolve_storage_policy).
  LsqProblem(ThreadPool& pool, const CsrMatrix& a,
             StorageMode storage = StorageMode::kAuto);

  /// Binds a caller-materialized transpose (not copied; `a` and `at` must
  /// outlive the handle).  Validates that shapes are transposed.
  LsqProblem(ThreadPool& pool, const CsrMatrix& a, const CsrMatrix& at,
             StorageMode storage = StorageMode::kAuto);

  /// Shard clone: binds `pool` to the matrix of `other` and reuses its
  /// analysis — the shared A^T (same instance, held through the matrix
  /// cache) and the column squared-norm denominators — skipping the rank
  /// check.  The clone's ProblemStats start at zero validation passes /
  /// transpose builds.  Safe concurrently with solves on `other`.
  LsqProblem(ThreadPool& pool, const LsqProblem& other);
  ~LsqProblem();  // out-of-line: ProblemScratch is incomplete here

  LsqProblem(const LsqProblem&) = delete;
  LsqProblem& operator=(const LsqProblem&) = delete;

  /// Solves min ||A x - b|| from `x` (in place).  `controls.method` routes
  /// between the two asynchronous methods: kAuto/kAsyncRgs run randomized
  /// coordinate descent over the columns of A (iteration (21));
  /// kAsyncKaczmarz runs the row-action method — directions are rows, each
  /// update projects x onto its row's hyperplane with the 1/||A_i||^2
  /// denominators precomputed at preparation (zero rows no-op).  The
  /// Krylov methods are rejected.  Convergence metric for both:
  /// ||A^T(b - Ax)|| / ||A^T b|| — for inconsistent systems the Kaczmarz
  /// iterate converges to a neighbourhood of the least-squares solution
  /// (radius shrinking with beta), so pair it with a modest rel_tol.
  SolveOutcome solve(const std::vector<double>& b, std::vector<double>& x,
                     const SolveControls& controls = {});

  [[nodiscard]] const CsrMatrix& matrix() const noexcept { return a_; }
  [[nodiscard]] const CsrMatrix& transpose() const noexcept { return *at_; }
  /// The CSR policy resolved at construction.
  [[nodiscard]] StoragePolicy storage() const noexcept { return storage_; }
  [[nodiscard]] ProblemStats stats() const;

 private:
  /// Policy-concrete solve bodies behind the storage dispatch (problem.cpp):
  /// coordinate descent over columns, and the Kaczmarz row-action method.
  template <class Matrix>
  SolveOutcome solve_on(const Matrix& a, const Matrix& at,
                        const std::vector<double>& b, std::vector<double>& x,
                        const SolveControls& controls);
  template <class Matrix>
  SolveOutcome solve_kaczmarz_on(const Matrix& a, const Matrix& at,
                                 const std::vector<double>& b,
                                 std::vector<double>& x,
                                 const SolveControls& controls);

  ThreadPool& pool_;
  const CsrMatrix& a_;
  std::shared_ptr<const CsrMatrix> at_holder_;  // cached-transpose mode
  const CsrMatrix* at_;
  /// Compact copies of (A, A^T) when storage_ narrows; the pair for at most
  /// one narrow policy is non-null.  shared_ptr so shard clones alias them.
  std::shared_ptr<const CsrMatrix32> a32_;
  std::shared_ptr<const CsrMatrix32> at32_;
  std::shared_ptr<const CsrMatrixMixed> amixed_;
  std::shared_ptr<const CsrMatrixMixed> atmixed_;
  StoragePolicy storage_ = StoragePolicy::kInt64Double;
  std::vector<double> col_sq_;      // ||A_{:,j}||^2 update denominators
  std::vector<double> row_sq_;      // ||A_i||^2 (Kaczmarz sampling weights)
  std::vector<double> inv_row_sq_;  // 1/||A_i||^2 projection denominators
                                    // (0 for zero rows: their update no-ops)
  /// Lazily cached kWeighted samplers — columns (coordinate descent,
  /// weights col_sq_) and rows (Kaczmarz, weights row_sq_); mutex_-guarded.
  std::optional<DirectionSampler> weighted_cols_;
  std::optional<DirectionSampler> weighted_rows_;
  mutable std::recursive_mutex mutex_;
  std::unique_ptr<detail::ProblemScratch> scratch_;
  ProblemStats stats_;
};

}  // namespace asyrgs
