// Randomized coordinate descent for overdetermined least squares, and its
// asynchronous variant (paper Section 8, iterations (20)/(21), Theorem 5).
//
// Problem: min_x ||A x - b||_2 with A (m x n, m >= n) of full column rank.
// The method is stochastic coordinate descent on f(x) = ||Ax - b||^2, i.e.
// randomized Gauss-Seidel applied to the normal equations A^T A x = A^T b
// without forming A^T A:
//
//   pick column j at random
//   gamma = A_{:,j}^T (b - A x) / ||A_{:,j}||_2^2
//   x_j  += beta * gamma
//
// The sequential form (iteration (20)) keeps the residual r = b - Ax
// up to date, costing O(nnz(column j)).  The asynchronous form cannot: "updates
// to r cannot be atomic, so ... the necessary entries of the residual have
// to be computed in each iteration" (Section 8) — each update re-reads the
// touched rows of A, costing O(sum of row sizes over the column's rows).
// Theorem 5 transfers the Theorem 4 bound with X = A^T A, kappa(A)^2 in
// place of kappa.
#pragma once

#include <cstdint>

#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/core/rgs.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// Sequential randomized coordinate descent for least squares
/// (iteration (20) with residual maintenance).  One reported sweep =
/// n column updates.  Convergence metric: ||A^T r|| / ||A^T b||.
RgsReport rcd_lsq_solve(const CsrMatrix& a, const std::vector<double>& b,
                        std::vector<double>& x, const RgsOptions& options = {});

/// Asynchronous randomized least-squares solver (iteration (21)).
/// `at` must be the transpose of `a` (built once by the caller; it gives the
/// solver CSR access to the columns of A).  Options/report types are shared
/// with AsyRGS; `step_size` must be < 1 for the Theorem 5 guarantee.
/// `scope` partitions the *columns* (the least-squares coordinates) under
/// RandomizationScope::kOwnerComputes, and `scan` selects the FP
/// association of the inner row scans (ScanMode; the kernel's dominant FP
/// cost).  Thread-safety matches async_rgs_solve: matrices and b are
/// read-only, `x` is written concurrently until the call returns.
AsyncRgsReport async_lsq_solve(ThreadPool& pool, const CsrMatrix& a,
                               const CsrMatrix& at,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const AsyncRgsOptions& options = {});

/// Convenience overload that materializes the transpose internally, through
/// the matrix's shared transpose cache (CsrMatrix::transpose_shared) — so
/// repeated calls against one matrix build A^T exactly once.  For the full
/// prepare-once / solve-many split (column norms, rank validation, scratch),
/// use asyrgs::LsqProblem (asyrgs/problem.hpp), which this wraps.
AsyncRgsReport async_lsq_solve(ThreadPool& pool, const CsrMatrix& a,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const AsyncRgsOptions& options = {});

}  // namespace asyrgs
