#include "asyrgs/gen/laplacian.hpp"

#include <cmath>
#include <cstdint>

#include <limits>
#include <string>

#include "asyrgs/sparse/coo.hpp"

namespace asyrgs {

namespace {

/// a * b in index_t, or a thrown Error naming `who` when the product would
/// wrap.  Grid-dimension products are the one place these generators can
/// overflow *before* any positivity check sees a bad value — signed wrap is
/// UB and, where it happens to produce a positive n, would silently build
/// the wrong operator.  Callers guarantee a, b > 0.
index_t checked_mul(index_t a, index_t b, const char* who) {
  if (a > std::numeric_limits<index_t>::max() / b)
    throw Error(std::string(who) +
                ": grid dimensions overflow the index type");
  return a * b;
}

/// n rows at `stencil` entries each as a std::size_t reserve count, guarded
/// so the stencil multiple cannot wrap index_t (a 1D chain at n near
/// 2^63 / 3 passes the dimension checks but not this one).
std::size_t checked_reserve(index_t n, index_t stencil, const char* who) {
  if (n > std::numeric_limits<index_t>::max() / stencil)
    throw Error(std::string(who) +
                ": nonzero estimate overflows the index type");
  return static_cast<std::size_t>(stencil * n);
}

}  // namespace

template <class Index, class Value>
CsrMatrixT<Index, Value> laplacian_1d_as(index_t n) {
  require(n > 0, "laplacian_1d: n must be positive");
  CooBuilderT<Index, Value> b(n, n);
  b.reserve(checked_reserve(n, 3, "laplacian_1d"));
  for (index_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i + 1 < n) {
      b.add(i, i + 1, -1.0);
      b.add(i + 1, i, -1.0);
    }
  }
  return b.to_csr();
}

CsrMatrix laplacian_1d(index_t n) {
  return laplacian_1d_as<std::int64_t, double>(n);
}

template <class Index, class Value>
CsrMatrixT<Index, Value> laplacian_2d_as(index_t nx, index_t ny, double ax,
                                         double ay) {
  require(nx > 0 && ny > 0, "laplacian_2d: grid dims must be positive");
  require(ax > 0.0 && ay > 0.0, "laplacian_2d: anisotropy must be positive");
  const index_t n = checked_mul(nx, ny, "laplacian_2d");
  CooBuilderT<Index, Value> b(n, n);
  b.reserve(checked_reserve(n, 5, "laplacian_2d"));
  auto id = [nx](index_t ix, index_t iy) { return iy * nx + ix; };
  for (index_t iy = 0; iy < ny; ++iy) {
    for (index_t ix = 0; ix < nx; ++ix) {
      const index_t me = id(ix, iy);
      b.add(me, me, 2.0 * ax + 2.0 * ay);
      if (ix > 0) b.add(me, id(ix - 1, iy), -ax);
      if (ix + 1 < nx) b.add(me, id(ix + 1, iy), -ax);
      if (iy > 0) b.add(me, id(ix, iy - 1), -ay);
      if (iy + 1 < ny) b.add(me, id(ix, iy + 1), -ay);
    }
  }
  return b.to_csr();
}

CsrMatrix laplacian_2d(index_t nx, index_t ny, double ax, double ay) {
  return laplacian_2d_as<std::int64_t, double>(nx, ny, ax, ay);
}

template <class Index, class Value>
CsrMatrixT<Index, Value> laplacian_3d_as(index_t nx, index_t ny, index_t nz) {
  require(nx > 0 && ny > 0 && nz > 0,
          "laplacian_3d: grid dims must be positive");
  const index_t n =
      checked_mul(checked_mul(nx, ny, "laplacian_3d"), nz, "laplacian_3d");
  CooBuilderT<Index, Value> b(n, n);
  b.reserve(checked_reserve(n, 7, "laplacian_3d"));
  auto id = [nx, ny](index_t ix, index_t iy, index_t iz) {
    return (iz * ny + iy) * nx + ix;
  };
  for (index_t iz = 0; iz < nz; ++iz) {
    for (index_t iy = 0; iy < ny; ++iy) {
      for (index_t ix = 0; ix < nx; ++ix) {
        const index_t me = id(ix, iy, iz);
        b.add(me, me, 6.0);
        if (ix > 0) b.add(me, id(ix - 1, iy, iz), -1.0);
        if (ix + 1 < nx) b.add(me, id(ix + 1, iy, iz), -1.0);
        if (iy > 0) b.add(me, id(ix, iy - 1, iz), -1.0);
        if (iy + 1 < ny) b.add(me, id(ix, iy + 1, iz), -1.0);
        if (iz > 0) b.add(me, id(ix, iy, iz - 1), -1.0);
        if (iz + 1 < nz) b.add(me, id(ix, iy, iz + 1), -1.0);
      }
    }
  }
  return b.to_csr();
}

CsrMatrix laplacian_3d(index_t nx, index_t ny, index_t nz) {
  return laplacian_3d_as<std::int64_t, double>(nx, ny, nz);
}

double laplacian_1d_eigenvalue(index_t n, index_t k) {
  require(k >= 1 && k <= n, "laplacian_1d_eigenvalue: k out of range");
  constexpr double pi = 3.14159265358979323846;
  return 2.0 - 2.0 * std::cos(static_cast<double>(k) * pi /
                              static_cast<double>(n + 1));
}

#define ASYRGS_INSTANTIATE_LAPLACIAN(Index, Value)                          \
  template CsrMatrixT<Index, Value> laplacian_1d_as<Index, Value>(index_t); \
  template CsrMatrixT<Index, Value> laplacian_2d_as<Index, Value>(          \
      index_t, index_t, double, double);                                    \
  template CsrMatrixT<Index, Value> laplacian_3d_as<Index, Value>(          \
      index_t, index_t, index_t);

ASYRGS_INSTANTIATE_LAPLACIAN(std::int64_t, double)
ASYRGS_INSTANTIATE_LAPLACIAN(std::int32_t, double)
ASYRGS_INSTANTIATE_LAPLACIAN(std::int32_t, float)

#undef ASYRGS_INSTANTIATE_LAPLACIAN

}  // namespace asyrgs
