// asyrgs_solve — command-line SPD solver over Matrix Market files.
//
//   asyrgs_solve --matrix A.mtx [--rhs b.mtx] [--out x.mtx]
//                [--method auto|asyrgs|fcg|cg] [--tol 1e-8] [--threads 0]
//                [--scan pinned|reassociated]
//
// Reads an SPD matrix (coordinate format, general or symmetric), solves
// A x = b with the selected method (b defaults to A * ones so the run is
// self-checking), writes the solution in array format, and prints a solve
// summary.  This is the end-to-end path a downstream user takes without
// writing any C++.
#include <fstream>
#include <iostream>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

int main(int argc, char** argv) {
  CliParser cli("asyrgs_solve", "solve an SPD Matrix Market system");
  auto matrix_path = cli.add_string("matrix", "", "input matrix (.mtx)");
  auto rhs_path = cli.add_string("rhs", "", "right-hand side (.mtx array); "
                                            "default: A * ones");
  auto out_path = cli.add_string("out", "", "solution output (.mtx array)");
  auto method = cli.add_string("method", "auto", "auto|asyrgs|fcg|cg");
  auto tol = cli.add_double("tol", 1e-8, "relative residual target");
  auto threads = cli.add_int("threads", 0, "worker threads (0 = all)");
  auto max_iters = cli.add_int("max-iterations", 0, "iteration cap (0=auto)");
  auto inner = cli.add_int("inner-sweeps", 2, "FCG preconditioner sweeps");
  auto scan = cli.add_string(
      "scan", "pinned",
      "row-scan FP association: pinned (bit-reproducible) | reassociated "
      "(fast-math SIMD; see docs/TUNING.md)");

  try {
    cli.parse(argc, argv);
    require(!matrix_path.value().empty(), "missing required --matrix");

    const CsrMatrix a = read_matrix_market_file(*matrix_path);
    std::cerr << "matrix: " << a.rows() << " x " << a.cols() << ", "
              << a.nnz() << " nonzeros\n";

    std::vector<double> b;
    if (!rhs_path.value().empty()) {
      std::ifstream in(*rhs_path);
      require(in.good(), "cannot open --rhs file");
      b = read_vector_market(in);
    } else {
      const std::vector<double> ones(static_cast<std::size_t>(a.rows()), 1.0);
      b = rhs_from_solution(a, ones);
      std::cerr << "rhs: A * ones (self-checking mode)\n";
    }

    SpdSolveOptions opt;
    opt.rel_tol = *tol;
    opt.threads = static_cast<int>(*threads);
    opt.max_iterations = static_cast<int>(*max_iters);
    opt.inner_sweeps = static_cast<int>(*inner);
    if (*method == "auto")
      opt.method = SpdMethod::kAuto;
    else if (*method == "asyrgs")
      opt.method = SpdMethod::kAsyncRgs;
    else if (*method == "fcg")
      opt.method = SpdMethod::kFcgAsyRgs;
    else if (*method == "cg")
      opt.method = SpdMethod::kCg;
    else
      throw Error("unknown --method (want auto|asyrgs|fcg|cg)");
    if (*scan == "pinned")
      opt.scan = ScanMode::kPinned;
    else if (*scan == "reassociated")
      opt.scan = ScanMode::kReassociated;
    else
      throw Error("unknown --scan (want pinned|reassociated)");

    std::vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);
    const SpdSolveSummary summary =
        solve_spd(ThreadPool::global(), a, b, x, opt);

    std::cerr << "method: " << summary.description << "\n"
              << "converged: " << (summary.converged ? "yes" : "NO")
              << "  iterations: " << summary.iterations
              << "  time: " << summary.seconds << " s\n"
              << "relative residual: " << relative_residual(a, b, x) << "\n";

    if (!out_path.value().empty()) {
      std::ofstream out(*out_path);
      require(out.good(), "cannot open --out file");
      write_vector_market(out, x);
      std::cerr << "solution written to " << *out_path << "\n";
    }
    return summary.converged ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
