# Overload serving smoke: drive asyrgs_serve in open-loop mode with a tiny
# admission bound so some requests are rejected, then validate the JSON trace
# it wrote — every line must parse, carry the expected fields, and at least
# one request must have executed.  Uses CMake's string(JSON) (3.19+) so the
# check needs no external JSON tooling.
#
# Expected -D inputs:
#   ASYRGS_SERVE  path to the asyrgs_serve executable
#   WORK_DIR      scratch directory for the trace file
cmake_minimum_required(VERSION 3.19)

if(NOT ASYRGS_SERVE OR NOT WORK_DIR)
  message(FATAL_ERROR "smoke_serve_overload: ASYRGS_SERVE and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(trace_file "${WORK_DIR}/trace.jsonl")

# Offered load far above what one single-worker shard clears at 4000 sweeps
# on the generated 24x24 Laplacian, with room for only one queued request:
# the service must shed the excess as kRejected and still exit 0.
execute_process(
  COMMAND "${ASYRGS_SERVE}"
    --shards 1 --threads-per-shard 1 --mix spd --sweeps 4000
    --arrival-rate 200 --duration 0.5 --max-queue 1 --deadline 0.4
    --trace "${trace_file}"
  RESULT_VARIABLE serve_result
  ERROR_VARIABLE serve_stderr)
if(NOT serve_result EQUAL 0)
  message(FATAL_ERROR "asyrgs_serve overload run failed (exit ${serve_result}):\n${serve_stderr}")
endif()
message(STATUS "asyrgs_serve report:\n${serve_stderr}")

if(NOT EXISTS "${trace_file}")
  message(FATAL_ERROR "trace file was not written: ${trace_file}")
endif()
file(STRINGS "${trace_file}" trace_lines)
list(LENGTH trace_lines n_lines)
if(n_lines LESS 2)
  message(FATAL_ERROR "expected several trace lines, got ${n_lines}")
endif()

set(n_executed 0)
set(n_rejected 0)
foreach(line IN LISTS trace_lines)
  # string(JSON) raises a fatal error on malformed JSON or a missing key,
  # so each GET below is itself the assertion that the line is well-formed.
  string(JSON type GET "${line}" type)
  if(NOT type STREQUAL "request")
    message(FATAL_ERROR "unexpected trace event type '${type}' in: ${line}")
  endif()
  string(JSON id GET "${line}" id)
  string(JSON status GET "${line}" status)
  string(JSON shard GET "${line}" shard)
  string(JSON enqueue_us GET "${line}" enqueue_us)
  string(JSON start_us GET "${line}" start_us)
  string(JSON done_us GET "${line}" done_us)
  if(id LESS 1)
    message(FATAL_ERROR "trace ids are 1-based, got ${id}: ${line}")
  endif()
  if(done_us LESS enqueue_us)
    message(FATAL_ERROR "done precedes enqueue: ${line}")
  endif()
  if(status STREQUAL "rejected")
    # Never reached a shard: no start timestamp, no shard assignment.
    if(NOT start_us EQUAL -1 OR NOT shard EQUAL -1)
      message(FATAL_ERROR "rejected request has execution fields: ${line}")
    endif()
    math(EXPR n_rejected "${n_rejected} + 1")
  else()
    if(start_us LESS enqueue_us OR shard LESS 0)
      message(FATAL_ERROR "executed request has bad start/shard: ${line}")
    endif()
    math(EXPR n_executed "${n_executed} + 1")
  endif()
endforeach()

if(n_executed EQUAL 0)
  message(FATAL_ERROR "no request executed — the service served nothing")
endif()
if(n_rejected EQUAL 0)
  message(FATAL_ERROR "no request was shed at 200/s against 1 worker with "
    "max_queue=1 — admission control did not engage")
endif()
message(STATUS "overload smoke OK: ${n_executed} executed, ${n_rejected} shed, "
  "${n_lines} trace lines all parsed")
