// minigtest — runner implementation: registry storage, --gtest_filter
// matching, the per-test execution protocol, and GoogleTest-style reporting.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "minigtest/registry.hpp"

namespace testing {
namespace {

struct RegisteredTest {
  std::string suite;
  std::string name;
  std::function<Test*()> factory;

  std::string full_name() const { return suite + "." + name; }
};

// Glob match with '*' (any run) and '?' (any one character), iterative
// backtracking form.
bool GlobMatch(const std::string& pattern, const std::string& text) {
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool MatchesAnySection(const std::string& sections, const std::string& name) {
  std::size_t begin = 0;
  while (begin <= sections.size()) {
    std::size_t end = sections.find(':', begin);
    if (end == std::string::npos) end = sections.size();
    if (end > begin && GlobMatch(sections.substr(begin, end - begin), name)) {
      return true;
    }
    begin = end + 1;
  }
  return false;
}

// GoogleTest filter syntax: positive patterns, then an optional '-' section
// of negative patterns, each ':'-separated. An empty positive section means
// "everything".
bool MatchesFilter(const std::string& filter, const std::string& name) {
  const std::size_t dash = filter.find('-');
  const std::string positive =
      dash == std::string::npos ? filter : filter.substr(0, dash);
  const std::string negative =
      dash == std::string::npos ? std::string() : filter.substr(dash + 1);
  if (!positive.empty() && positive != "*" &&
      !MatchesAnySection(positive, name)) {
    return false;
  }
  if (!negative.empty() && MatchesAnySection(negative, name)) return false;
  return true;
}

}  // namespace

struct UnitTest::Impl {
  std::vector<RegisteredTest> tests;
  std::vector<std::function<void()>> materializers;
  bool materialized = false;
  std::string default_filter = "*";

  int last_run = 0;
  int last_failed = 0;

  // Per-test failure state written by ReportFailure(); atomic because
  // assertions may fail concurrently on pool worker threads inside a test
  // body (real GoogleTest is thread-safe here too).
  std::atomic<bool> current_failed{false};

  void materialize_params() {
    if (materialized) return;
    materialized = true;
    // Materializers may register tests; they must not add materializers.
    for (const auto& materializer : materializers) materializer();
  }
};

UnitTest::UnitTest() : impl_(new Impl) {}
UnitTest::~UnitTest() { delete impl_; }

UnitTest& UnitTest::instance() {
  static UnitTest unit;
  return unit;
}

bool UnitTest::register_test(std::string suite, std::string name,
                             std::function<Test*()> factory) {
  impl_->tests.push_back(
      RegisteredTest{std::move(suite), std::move(name), std::move(factory)});
  return true;
}

bool UnitTest::add_materializer(std::function<void()> materializer) {
  impl_->materializers.push_back(std::move(materializer));
  return true;
}

int UnitTest::last_run_count() const { return impl_->last_run; }
int UnitTest::last_failed_count() const { return impl_->last_failed; }

void UnitTest::set_default_filter(std::string filter) {
  impl_->default_filter = std::move(filter);
}
const std::string& UnitTest::default_filter() const {
  return impl_->default_filter;
}

void UnitTest::list_tests() {
  impl_->materialize_params();
  std::string last_suite;
  for (const RegisteredTest& test : impl_->tests) {
    if (test.suite != last_suite) {
      std::printf("%s.\n", test.suite.c_str());
      last_suite = test.suite;
    }
    std::printf("  %s\n", test.name.c_str());
  }
}

namespace internal {

void ReportFailure(FailureKind, const char* file, int line,
                   const std::string& message) {
  UnitTest::instance();  // ensure the singleton exists even pre-run
  std::printf("%s:%d: Failure\n%s\n", file, line, message.c_str());
  std::fflush(stdout);
  // Fatal-ness is enforced syntactically by the ASSERT_* macros (they
  // `return` out of the calling function); here both kinds just mark the
  // running test as failed.
  UnitTest::instance().impl_failed_hook();
}

}  // namespace internal

// Out-of-line hook so internal::ReportFailure (above) can poke Impl without
// exposing Impl in the header.
void UnitTest::impl_failed_hook() { impl_->current_failed = true; }

int UnitTest::run(const std::string& filter) {
  impl_->materialize_params();

  std::vector<const RegisteredTest*> selected;
  for (const RegisteredTest& test : impl_->tests) {
    if (MatchesFilter(filter, test.full_name())) selected.push_back(&test);
  }

  std::printf("[==========] Running %zu tests.\n", selected.size());
  std::vector<std::string> failed_names;
  for (const RegisteredTest* test : selected) {
    std::printf("[ RUN      ] %s\n", test->full_name().c_str());
    std::fflush(stdout);
    impl_->current_failed = false;
    try {
      Test* instance = test->factory();
      instance->SetUp();
      if (!impl_->current_failed) instance->TestBody();
      instance->TearDown();
      delete instance;
    } catch (const std::exception& e) {
      std::printf("Unexpected C++ exception: %s\n", e.what());
      impl_->current_failed = true;
    } catch (...) {
      std::printf("Unexpected unknown C++ exception.\n");
      impl_->current_failed = true;
    }
    if (impl_->current_failed) {
      failed_names.push_back(test->full_name());
      std::printf("[  FAILED  ] %s\n", test->full_name().c_str());
    } else {
      std::printf("[       OK ] %s\n", test->full_name().c_str());
    }
    std::fflush(stdout);
  }

  const int failed = static_cast<int>(failed_names.size());
  const int passed = static_cast<int>(selected.size()) - failed;
  std::printf("[==========] %zu tests ran.\n", selected.size());
  std::printf("[  PASSED  ] %d tests.\n", passed);
  if (failed > 0) {
    std::printf("[  FAILED  ] %d tests, listed below:\n", failed);
    for (const std::string& name : failed_names) {
      std::printf("[  FAILED  ] %s\n", name.c_str());
    }
  }
  std::fflush(stdout);

  impl_->last_run = static_cast<int>(selected.size());
  impl_->last_failed = failed;
  return failed;
}

void InitGoogleTest(int* argc, char** argv) {
  if (argc == nullptr) return;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    const std::string filter_prefix = "--gtest_filter=";
    if (arg.rfind(filter_prefix, 0) == 0) {
      UnitTest::instance().set_default_filter(arg.substr(filter_prefix.size()));
    } else if (arg == "--gtest_list_tests") {
      UnitTest::instance().list_tests();
      std::exit(0);
    } else if (arg.rfind("--gtest_", 0) == 0) {
      // Accept-and-ignore other GoogleTest flags (color, brief, ...) so
      // existing wrapper scripts keep working.
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
}

}  // namespace testing
