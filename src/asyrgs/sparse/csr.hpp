// Immutable compressed-sparse-row matrix.
//
// This is the single matrix representation used by all solvers.  Column
// indices within each row are sorted, which the randomized solvers rely on
// for cache-friendly row scans and O(log nnz(row)) entry lookup.
#pragma once

#include <span>
#include <vector>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

// ---------------------------------------------------------------------------
// Raw CSR row kernels
// ---------------------------------------------------------------------------
//
// The innermost loops of every solver are scans of one CSR row against a
// dense vector.  These free kernels take raw `__restrict`-qualified arrays —
// CSR index/value storage never aliases the dense operand — so the compiler
// can keep the row pointers in registers and schedule the loads freely.
// They are shared by the sequential solvers (rgs, rcd_lsq), SpMV, and the
// benches; the asynchronous kernels use their own variants with
// relaxed-atomic reads of the shared iterate.

/// Sum of vals[t] * x[cols[t]] over one row (SpMV / dot building block).
[[nodiscard]] inline double csr_row_dot(const index_t* __restrict cols,
                                        const double* __restrict vals,
                                        nnz_t len,
                                        const double* __restrict x) noexcept {
  double acc = 0.0;
  for (nnz_t t = 0; t < len; ++t) acc += vals[t] * x[cols[t]];
  return acc;
}

/// acc minus the row/vector products, one subtraction per nonzero — the
/// canonical Gauss-Seidel association (`acc = b_r`, then acc -= A_rj x_j in
/// column order) that every solver shares so equal-seed runs agree bit for
/// bit.
[[nodiscard]] inline double csr_row_sub_dot(
    double acc, const index_t* __restrict cols, const double* __restrict vals,
    nnz_t len, const double* __restrict x) noexcept {
  for (nnz_t t = 0; t < len; ++t) acc -= vals[t] * x[cols[t]];
  return acc;
}

/// Sparse rows x cols matrix in CSR format with sorted column indices.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Takes ownership of pre-built CSR arrays.  Validates monotone row
  /// pointers, in-range sorted column indices, and array sizes; throws
  /// asyrgs::Error on malformed input.
  CsrMatrix(index_t rows, index_t cols, std::vector<nnz_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<double> values);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] nnz_t nnz() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.back();
  }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  /// Row i as spans over (column indices, values).
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const noexcept {
    return {col_idx_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  [[nodiscard]] std::span<const double> row_vals(index_t i) const noexcept {
    return {values_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  [[nodiscard]] nnz_t row_nnz(index_t i) const noexcept {
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  [[nodiscard]] const std::vector<nnz_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<index_t>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// A(i, j), zero when the entry is not stored (binary search over the
  /// sorted row).
  [[nodiscard]] double at(index_t i, index_t j) const;

  /// Dot product of row i with dense vector x (serial building block of both
  /// SpMV and the Gauss-Seidel update gamma = b_r - A_r x).
  [[nodiscard]] double row_dot(index_t i, const double* x) const noexcept;

  /// y = A x (serial reference implementation; see sparse/spmv.hpp for the
  /// parallel kernels).
  void multiply(const double* x, double* y) const;

  /// y = A^T x (serial; y must have cols() entries).
  void multiply_transpose(const double* x, double* y) const;

  /// Main diagonal as a dense vector (zeros for missing entries; requires a
  /// square matrix).
  [[nodiscard]] std::vector<double> diagonal() const;

  /// Explicit transpose (used to give the least-squares solver column access
  /// to A via CSR rows of A^T).
  [[nodiscard]] CsrMatrix transpose() const;

  /// Deep equality of dimensions, structure, and values.
  [[nodiscard]] bool equals(const CsrMatrix& other, double tol = 0.0) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<nnz_t> row_ptr_;   // size rows_ + 1
  std::vector<index_t> col_idx_; // size nnz
  std::vector<double> values_;   // size nnz
};

/// Result of removing structurally empty columns.
struct ColumnCompression {
  CsrMatrix matrix;                  ///< same rows, empty columns removed
  std::vector<index_t> kept_columns; ///< new column c was old kept_columns[c]
};

/// Removes columns with no stored entries.  The paper preprocesses its data
/// matrix the same way ("after removing rows and columns that were
/// identically zero"); required by the least-squares solvers, which assume
/// full column rank.
[[nodiscard]] ColumnCompression drop_empty_columns(const CsrMatrix& a);

}  // namespace asyrgs
