// Serving many concurrent solves of one operator with SolverService.
//
// The paper's motivating workload (Section 9) fixes the matrix and streams
// right-hand sides at it.  PR 4's prepared handles amortize the per-matrix
// analysis across such a stream but serialize concurrent callers through
// one pool; the sharded service runs them genuinely in parallel: N pools,
// each with handle clones of the one analyzed matrix, fed from a single
// queue that free shards pull from.
//
// This example builds a 2-D Laplacian, stands up a 2-shard service with
// both the SPD and least-squares families prepared, and fires a mixed
// request stream from three client threads.  It then demonstrates the two
// service guarantees the tests pin down: the analysis was paid once for
// the whole service, and a fixed-seed request is bit-identical no matter
// which shard served it.
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

int main() {
  const CsrMatrix a = laplacian_2d(16, 16);  // n = 256, SPD
  std::cout << "operator: " << a.rows() << " x " << a.cols() << ", "
            << a.nnz() << " nonzeros\n";

  ServiceOptions options;
  options.shards = 2;
  options.workers_per_shard = 2;
  options.prepare_lsq = true;  // serve min ||Ax - b|| requests too
  SolverService service(a, options);

  // --- a mixed stream from concurrent clients -------------------------------
  SolveControls controls;
  controls.sweeps = 4000;
  controls.rel_tol = 1e-8;
  controls.sync = SyncMode::kBarrierPerSweep;  // tolerance needs sync points

  std::mutex mutex;
  std::vector<SolveTicket> tickets;
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < 4; ++r) {
        SolveControls request = controls;
        request.seed = static_cast<std::uint64_t>(16 * c + r + 1);
        const std::vector<double> b = random_vector(a.rows(), request.seed);
        SolveTicket t;
        if (r % 2 == 0) {
          t = service.submit(b, request);  // SPD: A x = b
        } else {
          // Least squares iterates on the normal equations, whose
          // conditioning is the square of the operator's — ask for a
          // correspondingly looser target.
          request.step_size = 0.95;
          request.rel_tol = 1e-2;
          t = service.submit_least_squares(b, request);
        }
        const std::lock_guard<std::mutex> lock(mutex);
        tickets.push_back(t);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  int converged = 0;
  for (SolveTicket& t : tickets) {
    const SolveOutcome& out = t.wait();  // rethrows a failed solve
    if (!out.converged()) {
      std::cerr << "FAIL: request did not converge: " << out.description
                << "\n";
      return EXIT_FAILURE;
    }
    ++converged;
  }
  std::cout << converged << " requests converged across "
            << service.shards() << " shards\n";

  // --- the amortization guarantee -------------------------------------------
  const ServiceStats stats = service.stats();
  for (std::size_t s = 0; s < stats.shards.size(); ++s)
    std::cout << "shard " << s << ": served " << stats.shards[s].served
              << ", validation passes "
              << stats.shards[s].spd.validation_passes +
                     stats.shards[s].lsq.validation_passes << "\n";
  if (stats.validation_passes != 2 || stats.transpose_builds != 1) {
    std::cerr << "FAIL: expected one analysis for the whole service\n";
    return EXIT_FAILURE;
  }

  // --- the determinism guarantee --------------------------------------------
  // Same seed, same controls => same bits, whichever shard runs it.
  SolveControls fixed;
  fixed.sweeps = 30;
  fixed.seed = 42;
  fixed.workers = 1;
  const std::vector<double> b = random_vector(a.rows(), 7);
  SolveTicket first = service.submit(b, fixed);
  SolveTicket second = service.submit(b, fixed);
  if (first.solution() != second.solution()) {
    std::cerr << "FAIL: fixed-seed requests disagreed across placements\n";
    return EXIT_FAILURE;
  }
  std::cout << "fixed-seed request bit-identical (shards " << first.shard()
            << " and " << second.shard() << ")\n";
  return EXIT_SUCCESS;
}
