// AsyRGS as a preconditioner inside a flexible Krylov method (Section 9,
// Table 1 / Figure 3): the composition the paper recommends when high
// accuracy is required.
//
//   build/examples/preconditioned_fcg [--inner-sweeps 2] [--tol 1e-8]
//
// Because AsyRGS is randomized *and* asynchronous, the preconditioner
// changes between applications; plain CG would lose its convergence
// guarantee, so the outer method is Notay's Flexible CG.
#include <iostream>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

int main(int argc, char** argv) {
  CliParser cli("preconditioned_fcg",
                "Flexible CG preconditioned by asynchronous randomized G-S");
  auto terms = cli.add_int("terms", 3000, "Gram dimension");
  auto documents = cli.add_int("documents", 12000, "corpus size");
  auto inner = cli.add_int("inner-sweeps", 2,
                           "AsyRGS sweeps per preconditioner application");
  auto threads = cli.add_int("threads", 0, "worker threads (0 = all)");
  auto tol = cli.add_double("tol", 1e-8, "outer relative-residual target");
  cli.parse(argc, argv);

  SocialGramOptions gopt;
  gopt.terms = *terms;
  gopt.documents = *documents;
  gopt.ridge = 5.0;
  const CsrMatrix a = make_social_gram(gopt).gram;
  const std::vector<double> b = random_vector(a.rows(), 11);

  ThreadPool& pool = ThreadPool::global();
  const int workers = *threads > 0 ? static_cast<int>(*threads) : pool.size();

  // Unpreconditioned baseline.
  SolveOptions plain_opt;
  plain_opt.max_iterations = 5000;
  plain_opt.rel_tol = *tol;
  std::vector<double> x_plain(a.rows(), 0.0);
  WallTimer t_plain;
  const SolveReport plain = cg_solve(pool, a, b, x_plain, plain_opt);
  std::cout << "plain CG:   " << plain.iterations << " iterations, "
            << t_plain.seconds() << " s, converged="
            << (plain.converged ? "yes" : "no") << "\n";

  // FCG + AsyRGS.  The preconditioner borrows a prepared SpdProblem
  // handle, so the matrix analysis and per-worker scratch are paid once and
  // every outer iteration's inner sweeps reuse them.
  SpdProblem problem(pool, a, /*check_input=*/false);
  AsyRgsPreconditioner precond(problem, static_cast<int>(*inner), workers);
  FcgOptions fo;
  fo.base.max_iterations = 5000;
  fo.base.rel_tol = *tol;
  std::vector<double> x_fcg(a.rows(), 0.0);
  WallTimer t_fcg;
  const FcgReport fcg = fcg_solve(pool, a, b, x_fcg, precond, fo, workers);
  std::cout << "FCG+AsyRGS: " << fcg.base.iterations << " outer iterations ("
            << precond.name() << "), " << t_fcg.seconds() << " s, converged="
            << (fcg.base.converged ? "yes" : "no") << "\n";
  std::cout << "mat-ops accounting (Table 1 metric): outer*(inner+1) = "
            << fcg.base.iterations * (static_cast<int>(*inner) + 1) << "\n";
  std::cout << "final residuals: CG " << relative_residual(a, b, x_plain)
            << ", FCG " << relative_residual(a, b, x_fcg) << "\n";
  return (plain.converged && fcg.base.converged) ? 0 : 1;
}
