// Figure 1 — Residual of Randomized Gauss-Seidel and CG on the test matrix.
//
// Paper (Section 9, Figure 1): relative residual ||AX - B||_F / ||B||_F as a
// function of iteration (CG) / sweep (Randomized G-S) for the 51-RHS
// social-media regression system.  The reproduction target is the *shape*:
// Randomized Gauss-Seidel drops faster over the first handful of sweeps
// (the low-accuracy regime big-data workloads live in), while CG wins in
// the long run — a crossover exists.
#include <iostream>

#include "bench_common.hpp"

using namespace asyrgs;
using namespace asyrgs::bench;

int main(int argc, char** argv) {
  CliParser cli("fig1_convergence",
                "Figure 1: residual vs iteration/sweep, Randomized G-S vs CG");
  GramCli gram_cli = add_gram_options(cli);
  auto iters = cli.add_int("iterations", 100, "iterations/sweeps to plot");
  auto threads = cli.add_int("threads", 0, "threads for CG SpMV (0 = all)");
  cli.parse(argc, argv);

  print_banner("fig1_convergence", "Figure 1 (Section 9)");
  const SocialGram system = build_gram(gram_cli);
  const CsrMatrix a = scaled_gram(system);
  print_matrix_profile(a);

  ThreadPool& pool = ThreadPool::global();
  const index_t k = *gram_cli.rhs;
  const MultiVector b = random_multivector(a.rows(), k, 7);

  // --- Randomized Gauss-Seidel (sequential; Fig. 1 is iteration counts,
  // not wall time) -----------------------------------------------------------
  MultiVector x_rgs(a.rows(), k);
  RgsOptions rgs_opt;
  rgs_opt.sweeps = static_cast<int>(*iters);
  rgs_opt.seed = 1;
  rgs_opt.track_history = true;
  const RgsReport rgs_rep = rgs_solve_block(a, b, x_rgs, rgs_opt);

  // --- CG ---------------------------------------------------------------------
  MultiVector x_cg(a.rows(), k);
  SolveOptions cg_opt;
  cg_opt.max_iterations = static_cast<int>(*iters);
  cg_opt.rel_tol = 0.0;  // run the full budget; Figure 1 plots the curve
  cg_opt.track_history = true;
  const BlockSolveReport cg_rep =
      block_cg_solve(pool, a, b, x_cg, cg_opt, static_cast<int>(*threads),
                     RowPartition::kRoundRobin);

  // --- Table ---------------------------------------------------------------------
  Table table({"iteration", "rgs_rel_residual", "cg_rel_residual"});
  const std::size_t rows =
      std::max(rgs_rep.residual_history.size(), cg_rep.residual_history.size());
  int crossover = -1;
  for (std::size_t i = 0; i < rows; ++i) {
    const double rgs_r = i < rgs_rep.residual_history.size()
                             ? rgs_rep.residual_history[i]
                             : rgs_rep.residual_history.back();
    const double cg_r = i < cg_rep.residual_history.size()
                            ? cg_rep.residual_history[i]
                            : cg_rep.residual_history.back();
    table.add_row({std::to_string(i + 1), fmt_sci(rgs_r), fmt_sci(cg_r)});
    if (crossover < 0 && cg_r < rgs_r) crossover = static_cast<int>(i + 1);
  }
  table.print(std::cout);

  std::cout << "# paper shape check: RGS leads early, CG wins later.\n";
  std::cout << "# rgs ahead at iteration 1..."
            << (crossover > 0 ? std::to_string(crossover - 1) : "end")
            << "; crossover at "
            << (crossover > 0 ? std::to_string(crossover) : std::string("none"))
            << "\n";
  return 0;
}
