#!/bin/sh
# Builds the Release bench drivers and records an updates/second trajectory
# point as BENCH_<label>.json in the repository root (schema documented in
# bench/README.md).
#
# Usage: scripts/bench.sh [--smoke] [--label NAME] [--build-dir DIR]
#                         [-- extra bench_updates flags...]
#   --smoke       tiny workload + short timings (CI keep-alive for the perf
#                 binaries; numbers are NOT comparable to full runs)
#   --label NAME  JSON label and file name (default: smoke | local)
#   --build-dir   CMake build tree to use (default: build-bench, configured
#                 Release with tests/examples/tools off for a fast build)
# Everything after `--` is passed through to bench_updates verbatim.
set -eu

cd "$(dirname "$0")/.."

smoke=""
label=""
build_dir="build-bench"
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) smoke="--smoke"; shift ;;
    --label) label="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --) shift; break ;;
    *) echo "bench.sh: unknown option $1" >&2; exit 2 ;;
  esac
done
if [ -z "$label" ]; then
  if [ -n "$smoke" ]; then label="smoke"; else label="local"; fi
fi

git_rev=$(git describe --always --dirty 2>/dev/null || echo unknown)

cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release \
  -DASYRGS_BUILD_TESTS=OFF -DASYRGS_BUILD_EXAMPLES=OFF \
  -DASYRGS_BUILD_TOOLS=OFF >/dev/null
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)" \
  --target bench_updates

"$build_dir"/bench/bench_updates $smoke --label "$label" \
  --git "$git_rev" --out "BENCH_${label}.json" "$@"

echo "bench.sh: wrote BENCH_${label}.json"

# Side-by-side scan-mode, storage-policy, sampling-policy, kaczmarz,
# block-kernel, prepare-amortization, serving-throughput, and overload
# summaries (schema v9: docs/TUNING.md).  Best effort — the JSON is the
# artifact; these lines are for the terminal.
if command -v python3 >/dev/null 2>&1; then
  python3 - "BENCH_${label}.json" <<'PYEOF'
import json, sys
d = json.load(open(sys.argv[1]))
s = d.get("scan_headline")
if s:
    print("bench.sh: scan mode (%s, 1 worker): pinned=%.3g upd/s "
          "reassociated=%.3g upd/s speedup=%.2fx"
          % (s["workload"], s["pinned_updates_per_second"],
             s["reassociated_updates_per_second"], s["speedup"]))
for t in d.get("storage_headline", []):
    if t["scan"] != "reassociated":
        continue
    print("bench.sh: storage (%s, 1 worker, %s scan): int64=%.3g "
          "int32=%.3g (%.2fx) mixed=%.3g (%.2fx) upd/s"
          % (t["workload"], t["scan"],
             t["int64_double_updates_per_second"],
             t["int32_double_updates_per_second"], t["int32_speedup"],
             t["int32_mixed_updates_per_second"], t["mixed_speedup"]))
for t in d.get("sampling_headline", []):
    print("bench.sh: sampling (%s, 1 worker, barrier): uniform=%.3g "
          "weighted=%.3g (%.2fx) residual=%.3g (%.2fx) upd/s"
          % (t["workload"], t["uniform_updates_per_second"],
             t["weighted_updates_per_second"], t["weighted_ratio"],
             t["residual_updates_per_second"], t["residual_ratio"]))
z = d.get("kaczmarz_headline")
if z:
    print("bench.sh: kaczmarz (%dx%d factor, %d nnz, 1 worker): "
          "uniform=%.3g weighted=%.3g row-projections/s (%.2fx)"
          % (z["rows"], z["cols"], z["nnz"],
             z["uniform_updates_per_second"],
             z["weighted_updates_per_second"], z["weighted_ratio"]))
k = d.get("block_headline")
if k:
    print("bench.sh: block k=%d (%s, 1 worker, executed %s): pinned=%.3g "
          "reassociated=%.3g row-upd/s speedup=%.2fx"
          % (k["block_k"], k["workload"], k["scan_executed"],
             k["pinned_updates_per_second"],
             k["reassociated_updates_per_second"], k["speedup"]))
p = d.get("prepare_amortization")
if p:
    for fam in ("spd", "lsq"):
        f = p.get(fam)
        if f:
            line = ("bench.sh: prepared %s solve (%s, %d sweeps): "
                    "cold=%.3gs prepared=%.3gs speedup=%.2fx"
                    % (fam, p["workload"], p["sweeps"],
                       f["cold_seconds_per_solve"],
                       f["prepared_seconds_per_solve"], f["speedup"]))
            if "uncached_speedup" in f:
                line += (" (uncached cold=%.3gs, %.2fx)"
                         % (f["cold_uncached_seconds_per_solve"],
                            f["uncached_speedup"]))
            print(line)
c = d.get("locality_headline")
if c:
    print("bench.sh: locality (laplacian_2d %dx%d, %d workers): "
          "baseline=%.3g partitioned[%d, steal %.2f]=%.3g upd/s "
          "speedup=%.2fx (analysis %.3gs)"
          % (c["nx"], c["nx"], c["workers"],
             c["baseline_updates_per_second"], c["partitions"],
             c["steal_rate"], c["partitioned_updates_per_second"],
             c["speedup"], c["analysis_seconds"]))
v = d.get("serving_throughput")
if v:
    points = " ".join("%d-shard=%.3g solves/s" % (q["shards"],
                                                  q["solves_per_second"])
                      for q in v["points"])
    print("bench.sh: serving (%s, %d requests, mix %s): %s "
          "(best multi-shard %d, %.2fx vs single)"
          % (v["workload"], v["requests"], v["mix"], points,
             v["best_multi_shards"], v["speedup_vs_single"]))
    o = v.get("overload")
    if o:
        print("bench.sh: overload (1 shard, %.3g/s open loop, max_queue=%d): "
              "offered=%d rejected=%d (rate %.2f) served p99=%.3gs"
              % (o["arrival_rate"], o["max_queue"], o["offered"],
                 o["rejected"], o["reject_rate"], o["served_p99_seconds"]))
PYEOF
fi
