// Ablation A — Measured error decay vs the Theorem 2/4 bounds across the
// delay bound tau, in the exact bounded-delay models (simulator).
//
// Not a figure from the paper, but the experiment its theory sections call
// for: how does the *measured* E_m / E_0 degrade as tau grows, and how far
// above it sit the proved bounds?  Consistent reads are replayed with the
// worst-case FixedDelay schedule (iteration (8)), inconsistent reads with
// the worst-case WindowExclusion schedule (iteration (9), beta = 0.5).
// Expected shape: measured decay degrades gently with tau; the bounds
// degrade faster and become vacuous as 2*rho*tau -> 1 (consistent) /
// omega -> 0 (inconsistent) — the paper notes its bounds "tend to be rather
// pessimistic".
#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace asyrgs;
using namespace asyrgs::bench;

int main(int argc, char** argv) {
  CliParser cli("ablation_tau",
                "Measured decay vs Theorem 2/4 bounds across tau");
  auto n_opt = cli.add_int("n", 400, "matrix dimension");
  auto sweeps = cli.add_int("sweeps", 20, "simulated sweeps (m = sweeps*n)");
  auto trials = cli.add_int("trials", 5, "direction seeds averaged");
  auto taus = cli.add_int_list("taus", {0, 1, 2, 4, 8, 16, 32, 64, 128},
                               "delay bounds to test");
  cli.parse(argc, argv);

  print_banner("ablation_tau", "Theorems 2 and 4 (Sections 5 and 7)");
  const index_t n = *n_opt;

  // Unit-diagonal, moderately conditioned SPD matrix (see DESIGN.md): the
  // theory's reference scenario.
  RandomBandedOptions gopt;
  gopt.n = n;
  gopt.offdiag_per_row = 6;
  gopt.bandwidth = 48;
  gopt.seed = 3;
  const CsrMatrix raw = random_sdd(gopt);
  const CsrMatrix a = UnitDiagonalScaling(raw).scale_matrix(raw);

  ThreadPool& pool = ThreadPool::global();
  TheoremInputs inputs = measure_theorem_inputs(pool, a, 0, 1.0,
                                                static_cast<int>(n));
  std::cout << "# n=" << n << " lambda=[" << fmt_auto(inputs.lambda_min)
            << ", " << fmt_auto(inputs.lambda_max) << "] kappa="
            << fmt_auto(inputs.kappa()) << " rho*n="
            << fmt_auto(inputs.rho * static_cast<double>(n)) << " rho2*n="
            << fmt_auto(inputs.rho2 * static_cast<double>(n)) << "\n";

  const std::vector<double> x_star = random_vector(n, 7);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  const std::vector<double> x0(static_cast<std::size_t>(n), 0.0);
  const double e0 = std::pow(a_norm_error(a, x0, x_star), 2);
  const std::uint64_t m = static_cast<std::uint64_t>(*sweeps) *
                          static_cast<std::uint64_t>(n);

  Table table({"tau", "measured_consistent", "bound_thm2", "2*rho*tau",
               "measured_inconsistent(b=.5)", "bound_thm4", "omega"});

  for (std::int64_t tau : *taus) {
    inputs.tau = tau;

    // Consistent model, beta = 1, worst-case fixed delay.
    inputs.beta = 1.0;
    const FixedDelay fixed(tau);
    double meas_cons = 0.0;
    for (int t = 0; t < *trials; ++t) {
      SimOptions opt;
      opt.iterations = m;
      opt.seed = 100 + static_cast<std::uint64_t>(t);
      meas_cons +=
          simulate_consistent(a, b, x0, x_star, fixed, opt).final_error_sq;
    }
    meas_cons /= static_cast<double>(*trials) * e0;
    const bool cons_ok = consistent_bound_applicable(inputs);
    const double bound_cons =
        cons_ok ? consistent_free_running_bound(inputs, m) : 1.0;

    // Inconsistent model, beta = 0.5, worst-case window exclusion.
    inputs.beta = 0.5;
    const WindowExclusion excl(tau);
    double meas_inc = 0.0;
    for (int t = 0; t < *trials; ++t) {
      SimOptions opt;
      opt.iterations = m;
      opt.seed = 200 + static_cast<std::uint64_t>(t);
      opt.step_size = 0.5;
      meas_inc +=
          simulate_inconsistent(a, b, x0, x_star, excl, opt).final_error_sq;
    }
    meas_inc /= static_cast<double>(*trials) * e0;
    const bool inc_ok = inconsistent_bound_applicable(inputs);
    const double bound_inc =
        inc_ok ? inconsistent_free_running_bound(inputs, m) : 1.0;

    table.add_row(
        {std::to_string(tau), fmt_sci(meas_cons),
         cons_ok ? fmt_sci(bound_cons) : "(vacuous)",
         fmt_fixed(2.0 * inputs.rho * static_cast<double>(tau), 3),
         fmt_sci(meas_inc), inc_ok ? fmt_sci(bound_inc) : "(vacuous)",
         fmt_fixed(omega_tau(inputs.rho2, tau, 0.5), 4)});
  }
  table.print(std::cout);
  std::cout << "# shape check: measured decay degrades gently with tau and "
               "stays below the bound wherever the bound applies.\n";
  return 0;
}
