// minigtest — test registration and the UnitTest singleton interface.
//
// TEST/TEST_F expand to a class whose static registrar hands a factory to the
// UnitTest singleton at static-initialization time; the runner (minigtest.cpp)
// drives ctor → SetUp → TestBody → TearDown → dtor and tallies failures.
#pragma once

#include <functional>
#include <string>

#include "minigtest/assert.hpp"

namespace testing {

class Test {
 public:
  Test() = default;
  Test(const Test&) = delete;
  Test& operator=(const Test&) = delete;
  virtual ~Test() = default;

  virtual void TestBody() = 0;

  // Public (GoogleTest has these protected behind friend machinery) so the
  // runner can drive the SetUp → TestBody → TearDown protocol; access is
  // checked against this base even when overrides are protected.
  virtual void SetUp() {}
  virtual void TearDown() {}
};

class UnitTest {
 public:
  static UnitTest& instance();

  // GoogleTest-compatible spelling.
  static UnitTest* GetInstance() { return &instance(); }

  bool register_test(std::string suite, std::string name,
                     std::function<Test*()> factory);
  bool add_materializer(std::function<void()> materializer);

  // Runs every registered test whose "Suite.Name" matches `filter`
  // (GoogleTest --gtest_filter syntax: ':'-separated glob patterns, with an
  // optional '-'-prefixed negative section). Returns the number of failed
  // tests and prints a GoogleTest-style report.
  int run(const std::string& filter = "*");

  // Counters describing the most recent run(); used by the self-test suite.
  int last_run_count() const;
  int last_failed_count() const;

  void set_default_filter(std::string filter);
  const std::string& default_filter() const;
  void list_tests();

  // Called by internal::ReportFailure to mark the running test as failed.
  void impl_failed_hook();

 private:
  UnitTest();
  ~UnitTest();
  struct Impl;
  Impl* impl_;
};

// Legacy spelling kept so existing `int main` bodies work unchanged.
void InitGoogleTest(int* argc, char** argv);
inline void InitGoogleTest() {}

}  // namespace testing

inline int RUN_ALL_TESTS() {
  ::testing::UnitTest& unit = ::testing::UnitTest::instance();
  return unit.run(unit.default_filter()) == 0 ? 0 : 1;
}

#define MGT_TEST_CLASS_NAME_(suite, name) suite##_##name##_Test

#define MGT_TEST_(suite, name, parent)                                   \
  class MGT_TEST_CLASS_NAME_(suite, name) : public parent {              \
   public:                                                               \
    void TestBody() override;                                            \
  };                                                                     \
  [[maybe_unused]] static const bool mgt_registered_##suite##_##name =   \
      ::testing::UnitTest::instance().register_test(                     \
          #suite, #name, []() -> ::testing::Test* {                      \
            return new MGT_TEST_CLASS_NAME_(suite, name);                \
          });                                                            \
  void MGT_TEST_CLASS_NAME_(suite, name)::TestBody()

#define TEST(suite, name) MGT_TEST_(suite, name, ::testing::Test)
#define TEST_F(fixture, name) MGT_TEST_(fixture, name, fixture)
