#include "asyrgs/simulate/delay_models.hpp"

// Schedules are header-only; this translation unit pins the header into the
// library build.
