#include "asyrgs/linalg/multivector.hpp"

#include <algorithm>
#include <cmath>

namespace asyrgs {

std::vector<double> MultiVector::column(index_t c) const {
  require(c >= 0 && c < k_, "MultiVector::column: index out of range");
  std::vector<double> v(static_cast<std::size_t>(n_));
  for (index_t i = 0; i < n_; ++i) v[i] = at(i, c);
  return v;
}

void MultiVector::set_column(index_t c, const std::vector<double>& v) {
  require(c >= 0 && c < k_, "MultiVector::set_column: index out of range");
  require(static_cast<index_t>(v.size()) == n_,
          "MultiVector::set_column: length mismatch");
  for (index_t i = 0; i < n_; ++i) at(i, c) = v[i];
}

std::vector<double> column_norms(const MultiVector& x) {
  std::vector<double> acc(static_cast<std::size_t>(x.cols()), 0.0);
  for (index_t i = 0; i < x.rows(); ++i) {
    const double* row = x.row(i);
    for (index_t c = 0; c < x.cols(); ++c) acc[c] += row[c] * row[c];
  }
  for (double& v : acc) v = std::sqrt(v);
  return acc;
}

std::vector<double> column_diff_norms(const MultiVector& x,
                                      const MultiVector& y) {
  require(x.rows() == y.rows() && x.cols() == y.cols(),
          "column_diff_norms: shape mismatch");
  std::vector<double> acc(static_cast<std::size_t>(x.cols()), 0.0);
  for (index_t i = 0; i < x.rows(); ++i) {
    const double* xr = x.row(i);
    const double* yr = y.row(i);
    for (index_t c = 0; c < x.cols(); ++c) {
      const double d = xr[c] - yr[c];
      acc[c] += d * d;
    }
  }
  for (double& v : acc) v = std::sqrt(v);
  return acc;
}

double frobenius_norm(const MultiVector& x) {
  double acc = 0.0;
  const double* p = x.data();
  for (std::size_t t = 0; t < x.size(); ++t) acc += p[t] * p[t];
  return std::sqrt(acc);
}

void block_axpy(double alpha, const MultiVector& x, MultiVector& y) {
  require(x.rows() == y.rows() && x.cols() == y.cols(),
          "block_axpy: shape mismatch");
  const double* xp = x.data();
  double* yp = y.data();
  for (std::size_t t = 0; t < x.size(); ++t) yp[t] += alpha * xp[t];
}

}  // namespace asyrgs
