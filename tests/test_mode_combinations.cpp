// Cross-feature combination tests: every synchronization mode must compose
// with every randomization scope, for both single- and multi-RHS solves.
#include <gtest/gtest.h>

#include <tuple>

#include "asyrgs/asyrgs.hpp"

namespace asyrgs {
namespace {

class ModeComboTest
    : public ::testing::TestWithParam<std::tuple<SyncMode, RandomizationScope>> {
};

TEST_P(ModeComboTest, SingleRhsSolvesUnderEveryCombination) {
  const auto [sync, scope] = GetParam();
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(12, 12);
  const std::vector<double> x_star = random_vector(a.rows(), 3);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  std::vector<double> x(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 6000;
  opt.workers = 8;
  opt.sync = sync;
  opt.scope = scope;
  opt.sync_interval_seconds = 0.002;
  // Free-running mode cannot stop early; give it a fixed budget instead.
  if (sync != SyncMode::kFreeRunning) opt.rel_tol = 1e-7;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);

  if (sync == SyncMode::kFreeRunning &&
      scope == RandomizationScope::kOwnerComputes) {
    // Documented caveat (RandomizationScope::kOwnerComputes): with a finite
    // free-running budget, an early-finishing worker's partition freezes
    // against neighbours' mid-solve values, so only coarse progress is
    // guaranteed — production use pairs this scope with a synchronization
    // mode (covered by the other combinations below).
    EXPECT_LT(relative_residual(a, b, x), 0.5);
    return;
  }
  if (sync != SyncMode::kFreeRunning) {
    EXPECT_TRUE(rep.converged);
  }
  EXPECT_LT(relative_residual(a, b, x), 1e-6);
  EXPECT_LT(nrm2(subtract(x, x_star)) / nrm2(x_star), 1e-4);
}

TEST_P(ModeComboTest, BlockSolvesUnderEveryCombination) {
  const auto [sync, scope] = GetParam();
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(10, 10);
  const MultiVector x_star = random_multivector(a.rows(), 3, 5);
  const MultiVector b = rhs_from_solution(a, x_star);

  MultiVector x(a.rows(), 3);
  AsyncRgsOptions opt;
  opt.sweeps = 6000;
  opt.workers = 8;
  opt.sync = sync;
  opt.scope = scope;
  opt.sync_interval_seconds = 0.002;
  if (sync != SyncMode::kFreeRunning) opt.rel_tol = 1e-7;
  async_rgs_solve_block(pool, a, b, x, opt);

  const auto diffs = column_diff_norms(x, x_star);
  const auto norms = column_norms(x_star);
  const bool frozen_partitions =
      sync == SyncMode::kFreeRunning &&
      scope == RandomizationScope::kOwnerComputes;
  const double tol = frozen_partitions ? 0.5 : 1e-4;  // see single-RHS test
  for (index_t c = 0; c < 3; ++c)
    EXPECT_LT(diffs[c] / norms[c], tol) << "column " << c;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ModeComboTest,
    ::testing::Combine(::testing::Values(SyncMode::kFreeRunning,
                                         SyncMode::kBarrierPerSweep,
                                         SyncMode::kTimedBarrier),
                       ::testing::Values(RandomizationScope::kShared,
                                         RandomizationScope::kOwnerComputes)));

TEST(ModeCombo, NonAtomicComposesWithOwnerComputes) {
  // Owner-computes partitions make same-coordinate write races impossible
  // (each coordinate has exactly one writer), so even the racy write mode
  // loses no updates — a useful deployment configuration.
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(12, 12);
  const std::vector<double> x_star = random_vector(a.rows(), 7);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  std::vector<double> x(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 4000;
  opt.workers = 8;
  opt.scope = RandomizationScope::kOwnerComputes;
  opt.atomic_writes = false;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-8;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
  EXPECT_TRUE(rep.converged);
}

TEST(ModeCombo, SolveSpdHonoursIterationCap) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(16, 16);  // too hard for 3 sweeps
  const std::vector<double> b = random_vector(a.rows(), 9);
  std::vector<double> x(a.rows(), 0.0);
  SpdSolveOptions opt;
  opt.method = SpdMethod::kAsyncRgs;
  opt.rel_tol = 1e-12;
  opt.max_iterations = 3;
  const SpdSolveSummary s = solve_spd(pool, a, b, x, opt);
  EXPECT_FALSE(s.converged);
  EXPECT_LE(s.iterations, 3);
}

TEST(ModeCombo, LsqComposesWithTimedBarrier) {
  ThreadPool pool(8);
  SocialGramOptions gopt;
  gopt.terms = 300;
  gopt.documents = 2000;
  gopt.seed = 11;
  const CsrMatrix f = drop_empty_columns(make_social_gram(gopt).factor).matrix;
  const std::vector<double> coeffs = random_vector(f.cols(), 13);
  const std::vector<double> labels = rhs_from_solution(f, coeffs);

  std::vector<double> x(f.cols(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 4000;
  opt.workers = 8;
  opt.step_size = 0.9;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-8;
  const AsyncRgsReport rep = async_lsq_solve(pool, f, labels, x, opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(nrm2(subtract(x, coeffs)) / nrm2(coeffs), 1e-5);
}

}  // namespace
}  // namespace asyrgs
