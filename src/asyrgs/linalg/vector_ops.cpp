#include "asyrgs/linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "asyrgs/support/aligned.hpp"

namespace asyrgs {

double dot(const double* x, const double* y, index_t n) {
  double acc = 0.0;
  for (index_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double dot(const std::vector<double>& x, const std::vector<double>& y) {
  require(x.size() == y.size(), "dot: length mismatch");
  return dot(x.data(), y.data(), static_cast<index_t>(x.size()));
}

double nrm2(const double* x, index_t n) { return std::sqrt(dot(x, x, n)); }

double nrm2(const std::vector<double>& x) {
  return nrm2(x.data(), static_cast<index_t>(x.size()));
}

void axpy(double alpha, const double* x, double* y, index_t n) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  require(x.size() == y.size(), "axpy: length mismatch");
  axpy(alpha, x.data(), y.data(), static_cast<index_t>(x.size()));
}

void scal(double alpha, double* x, index_t n) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

void scal(double alpha, std::vector<double>& x) {
  scal(alpha, x.data(), static_cast<index_t>(x.size()));
}

std::vector<double> subtract(const std::vector<double>& x,
                             const std::vector<double>& y) {
  require(x.size() == y.size(), "subtract: length mismatch");
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

double max_abs(const std::vector<double>& x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

double dot_parallel(ThreadPool& pool, const double* x, const double* y,
                    index_t n, int workers) {
  if (workers <= 0) workers = pool.size();
  if (n < 1 << 14 || workers == 1) return dot(x, y, n);
  std::vector<Padded<double>> partial(static_cast<std::size_t>(workers));
  pool.run_team(workers, [&](int id, int team) {
    const index_t chunk = (n + team - 1) / team;
    const index_t lo = std::min<index_t>(static_cast<index_t>(id) * chunk, n);
    const index_t hi = std::min<index_t>(lo + chunk, n);
    partial[static_cast<std::size_t>(id)].value = dot(x + lo, y + lo, hi - lo);
  });
  double acc = 0.0;
  for (const auto& p : partial) acc += p.value;
  return acc;
}

void axpy_parallel(ThreadPool& pool, double alpha, const double* x, double* y,
                   index_t n, int workers) {
  if (workers <= 0) workers = pool.size();
  if (n < 1 << 14 || workers == 1) {
    axpy(alpha, x, y, n);
    return;
  }
  pool.parallel_for(
      0, n,
      [&](index_t lo, index_t hi) {
        axpy(alpha, x + lo, y + lo, hi - lo);
      },
      workers);
}

}  // namespace asyrgs
