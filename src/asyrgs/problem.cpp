#include "asyrgs/problem.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "asyrgs/core/engine.hpp"
#include "asyrgs/core/kernels.hpp"
#include "asyrgs/gen/partition.hpp"
#include "asyrgs/iter/cg.hpp"
#include "asyrgs/iter/fcg.hpp"
#include "asyrgs/iter/precond.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/sparse/properties.hpp"
#include "asyrgs/support/aligned.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

namespace detail {

/// Per-handle reusable solver scratch: the packed (b, 1/diag) pairs refilled
/// each solve, plus the engine's per-worker buffers.  Lives behind a pimpl
/// so problem.hpp stays free of the unstable engine/kernel internals.
struct ProblemScratch {
  std::vector<RhsDiagPair> rhs_diag;
  EngineScratch engine;
  /// Partitioned-solve staging: the iterate in RCM order, cache-line
  /// aligned so partition-owned slices never share a line (the boundaries
  /// are cut at kPartitionAlignRows multiples), and the permuted rhs.
  aligned_vector<double> xp;
  std::vector<double> bp;
};

/// Prepare-time partition analysis for SpdProblem: the RCM analysis (order +
/// permuted operator), the reciprocals of the permuted diagonal, and — when
/// the handle's storage policy narrows — a compact copy of the permuted
/// operator, so partitioned solves run the same storage the unpartitioned
/// path does.  Immutable once constructed; clones alias it via shared_ptr
/// exactly like the compact storage copies.
struct SpdPartitionState {
  PartitionAnalysis analysis;
  std::vector<double> inv_diag;  ///< 1/diag in permuted (RCM) order
  std::shared_ptr<const CsrMatrix32> a32;
  std::shared_ptr<const CsrMatrixMixed> amixed;

  SpdPartitionState(const CsrMatrix& a, StoragePolicy policy) : analysis(a) {
    // The symmetric permutation maps diagonal to diagonal, so the handle's
    // strict-positivity validation covers these reciprocals too.
    inv_diag = analysis.permuted().diagonal();
    for (double& d : inv_diag) d = 1.0 / d;
    if (policy == StoragePolicy::kInt32Double)
      a32 = std::make_shared<const CsrMatrix32>(
          convert_storage<std::int32_t, double>(analysis.permuted()));
    else if (policy == StoragePolicy::kInt32Mixed)
      amixed = std::make_shared<const CsrMatrixMixed>(
          convert_storage<std::int32_t, float>(analysis.permuted()));
  }
};

}  // namespace detail

namespace {

void validate_async_controls(const AsyncRgsOptions& options, const char* who) {
  // One message per violated precondition; `who` names the entry point.
  auto fail = [&](const char* what) {
    throw Error(std::string(who) + ": " + what);
  };
  if (options.sweeps < 0) fail("sweeps must be non-negative");
  if (!(options.step_size > 0.0 && options.step_size < 2.0))
    fail("step size must be in (0, 2)");
  if (options.rel_tol < 0.0) fail("rel_tol must be non-negative");
  if (!(options.sync_interval_seconds > 0.0))
    fail("sync interval must be positive");
}

/// Preconditions shared by every non-uniform sampling request.  The block
/// path passes residual_ok = false: its residual metric is a Frobenius norm
/// over all columns, which has no per-direction weight to refresh.
void validate_sampling_controls(const SolveControls& controls, const char* who,
                                bool residual_ok = true) {
  auto fail = [&](const char* what) {
    throw Error(std::string(who) + ": " + what);
  };
  if (controls.sampling == SamplingPolicy::kUniform) return;
  if (controls.scope != RandomizationScope::kShared)
    fail("non-uniform sampling requires the shared randomization scope "
         "(owner-computes partitions have no global distribution)");
  if (controls.sampling == SamplingPolicy::kResidual) {
    if (!residual_ok)
      fail("residual-weighted sampling is single-right-hand-side only");
    if (controls.sync == SyncMode::kFreeRunning)
      fail("residual-weighted sampling refreshes its table at "
           "synchronization points; use barrier-per-sweep or timed-barrier "
           "mode");
    if (controls.resample_sweeps < 1)
      fail("resample_sweeps must be at least 1");
  }
}

/// Preconditions for partitioned scheduling.  Callers that cannot serve it
/// at all (block, least squares, Krylov) reject partitions != 0 themselves
/// with a pointer to the supported path; this validates the knobs on any
/// path, including that steal_rate is inert without partitions.
void validate_partition_controls(const SolveControls& controls,
                                 const char* who) {
  auto fail = [&](const char* what) {
    throw Error(std::string(who) + ": " + what);
  };
  if (controls.partitions < 0) fail("partitions must be non-negative");
  if (controls.partitions == 0) {
    if (controls.steal_rate != 0.0)
      fail("steal_rate requires partitioned scheduling (partitions >= 1)");
    return;
  }
  if (!(controls.steal_rate >= 0.0 && controls.steal_rate < 1.0))
    fail("steal_rate must be in [0, 1)");
  if (controls.sampling != SamplingPolicy::kUniform)
    fail("partitioned scheduling draws uniformly within partitions; "
         "non-uniform sampling policies apply to the unpartitioned engine");
  if (controls.scope != RandomizationScope::kShared)
    fail("partitioned scheduling supplies its own ownership structure; use "
         "the shared randomization scope");
}

std::string sampling_note(const SolveControls& controls) {
  switch (controls.sampling) {
    case SamplingPolicy::kUniform:
      return "";
    case SamplingPolicy::kWeighted:
      return ", weighted sampling";
    case SamplingPolicy::kResidual:
      return ", residual sampling (refresh every " +
             std::to_string(std::max(1, controls.resample_sweeps)) +
             " rendezvous)";
  }
  return "";
}

/// w_i = (b_i - A_i x)^2 with plain reads of x — legal only before the
/// engine starts or inside a refresh callback (team parked at the barrier).
template <class Matrix>
void row_residual_weights(const Matrix& a, const std::vector<double>& b,
                          const double* x, std::vector<double>& w) {
  w.resize(b.size());
  for (index_t i = 0; i < a.rows(); ++i) {
    double ri = b[static_cast<std::size_t>(i)];
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t s = 0; s < cols.size(); ++s) ri -= vals[s] * x[cols[s]];
    w[static_cast<std::size_t>(i)] = ri * ri;
  }
}

/// w_j = (A^T (b - A x))_j^2 — squared gradient magnitudes of the
/// least-squares objective (the natural per-column residual weight for
/// coordinate descent).  Same read contract as row_residual_weights;
/// `r` is reusable scratch of a.rows() doubles.
template <class Matrix>
void col_residual_weights(const Matrix& a, const Matrix& at,
                          const std::vector<double>& b, const double* x,
                          std::vector<double>& r, std::vector<double>& w) {
  r.resize(b.size());
  for (index_t i = 0; i < a.rows(); ++i) {
    double ri = b[static_cast<std::size_t>(i)];
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t s = 0; s < cols.size(); ++s) ri -= vals[s] * x[cols[s]];
    r[static_cast<std::size_t>(i)] = ri;
  }
  w.resize(static_cast<std::size_t>(at.rows()));
  for (index_t j = 0; j < at.rows(); ++j) {
    const auto rows = at.row_cols(j);
    const auto vals = at.row_vals(j);
    double g = 0.0;
    for (std::size_t s = 0; s < rows.size(); ++s)
      g += vals[s] * r[rows[s]];
    w[static_cast<std::size_t>(j)] = g * g;
  }
}

const char* sync_name(SyncMode sync) {
  switch (sync) {
    case SyncMode::kFreeRunning:
      return "free running";
    case SyncMode::kBarrierPerSweep:
      return "barrier per sweep";
    case SyncMode::kTimedBarrier:
      return "timed barrier";
  }
  return "?";
}

int clamp_workers(int requested, const ThreadPool& pool) {
  int workers = requested > 0 ? requested : pool.size();
  if (workers > pool.size()) workers = pool.size();
  return workers;
}

/// Maps an engine report onto the unified outcome.  `tolerance_active` says
/// whether a tolerance could actually stop the run (rel_tol > 0 under a
/// synchronizing mode) — free-running runs never evaluate residuals, so for
/// them an unmet rel_tol is kBudgetCompleted, not kToleranceNotReached.
SolveOutcome outcome_from_report(AsyncRgsReport&& report,
                                 const AsyncRgsOptions& options,
                                 std::string description) {
  SolveOutcome out;
  const bool tolerance_active =
      options.rel_tol > 0.0 && options.sync != SyncMode::kFreeRunning;
  out.status = report.converged ? SolveStatus::kConverged
               : tolerance_active ? SolveStatus::kToleranceNotReached
                                  : SolveStatus::kBudgetCompleted;
  out.iterations = report.sweeps_done;
  out.updates = report.updates;
  out.workers = report.workers;
  out.relative_residual = report.final_relative_residual;
  out.seconds = report.seconds;
  out.scan_requested = options.scan;
  out.scan_executed = report.scan_used;
  out.residual_history = std::move(report.residual_history);
  out.description = std::move(description);
  return out;
}

}  // namespace

namespace detail {

AsyncRgsReport report_from_outcome(SolveOutcome&& out) {
  AsyncRgsReport report;
  report.sweeps_done = out.iterations;
  report.updates = out.updates;
  report.workers = out.workers;
  report.seconds = out.seconds;
  report.converged = out.status == SolveStatus::kConverged;
  report.final_relative_residual = out.relative_residual;
  report.residual_history = std::move(out.residual_history);
  report.scan_used = out.scan_executed;
  return report;
}

}  // namespace detail

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kConverged:
      return "converged";
    case SolveStatus::kToleranceNotReached:
      return "tolerance-not-reached";
    case SolveStatus::kBudgetCompleted:
      return "budget-completed";
    case SolveStatus::kRejected:
      return "rejected";
  }
  return "?";
}

const char* to_string(StorageMode mode) noexcept {
  switch (mode) {
    case StorageMode::kAuto:
      return "auto";
    case StorageMode::kInt64Double:
      return "int64_double";
    case StorageMode::kInt32Double:
      return "int32_double";
    case StorageMode::kInt32Mixed:
      return "int32_mixed";
  }
  return "?";
}

StoragePolicy resolve_storage_policy(StorageMode mode, index_t max_index,
                                     nnz_t nnz, bool* fell_back) noexcept {
  if (fell_back != nullptr) *fell_back = false;
  // Both guards must pass: the index width for the coordinates, and the
  // (conservative — see the header) int32 bound on the nonzero count.
  const bool fits =
      index_width_fits<std::int32_t>(max_index) &&
      nnz <= static_cast<nnz_t>(std::numeric_limits<std::int32_t>::max());
  switch (mode) {
    case StorageMode::kInt64Double:
      return StoragePolicy::kInt64Double;
    case StorageMode::kAuto:
      // Narrowing is free of arithmetic consequences for the double-value
      // policies (pinned-scan results stay bit-identical), so auto always
      // takes the bandwidth win when the shape allows it.
      return fits ? StoragePolicy::kInt32Double : StoragePolicy::kInt64Double;
    case StorageMode::kInt32Double:
      if (fits) return StoragePolicy::kInt32Double;
      break;
    case StorageMode::kInt32Mixed:
      if (fits) return StoragePolicy::kInt32Mixed;
      break;
  }
  // Explicit narrow request on a shape the index width cannot address:
  // serve full width rather than failing — the caller asked for a
  // performance policy, not a shape constraint.  Surfaced via *fell_back /
  // ProblemStats::storage_fallbacks.
  if (fell_back != nullptr) *fell_back = true;
  return StoragePolicy::kInt64Double;
}

SolveControls to_controls(const AsyncRgsOptions& options) {
  SolveControls c;
  c.method = SpdMethod::kAsyncRgs;
  c.sweeps = options.sweeps;
  c.step_size = options.step_size;
  c.seed = options.seed;
  c.workers = options.workers;
  c.atomic_writes = options.atomic_writes;
  c.sync = options.sync;
  c.scope = options.scope;
  c.scan = options.scan;
  c.sync_interval_seconds = options.sync_interval_seconds;
  c.track_history = options.track_history;
  c.rel_tol = options.rel_tol;
  return c;
}

AsyncRgsOptions to_async_rgs_options(const SolveControls& controls) {
  AsyncRgsOptions o;
  o.sweeps = controls.sweeps;
  o.step_size = controls.step_size;
  o.seed = controls.seed;
  o.workers = controls.workers;
  o.atomic_writes = controls.atomic_writes;
  o.sync = controls.sync;
  o.scope = controls.scope;
  o.scan = controls.scan;
  o.sync_interval_seconds = controls.sync_interval_seconds;
  o.track_history = controls.track_history;
  o.rel_tol = controls.rel_tol;
  return o;
}

// --- SpdProblem --------------------------------------------------------------

SpdProblem::SpdProblem(ThreadPool& pool, const CsrMatrix& a, bool check_input,
                       StorageMode storage)
    : pool_(pool),
      a_(a),
      scratch_(std::make_unique<detail::ProblemScratch>()) {
  require(a.square(), "SpdProblem: matrix must be square");
  inv_diag_ = a.diagonal();
  for (double& d : inv_diag_) {
    require(d > 0.0, "SpdProblem: diagonal must be strictly positive "
                     "(matrix cannot be SPD)");
    d = 1.0 / d;
  }
  ++stats_.validation_passes;
  if (check_input) {
    // Symmetry check through the matrix's shared transpose cache: the
    // transpose this builds is reused by later handles (and by any
    // least-squares use of the same matrix) instead of being rebuilt.
    bool built_now = false;
    const std::shared_ptr<const CsrMatrix> at = a.transpose_shared(&built_now);
    if (built_now) ++stats_.transpose_builds;
    require(a.equals(*at, 1e-12 * inf_norm(a)),
            "SpdProblem: matrix is not symmetric");
  }
  // Narrowing happens last, after validation passed, so a rejected matrix
  // never pays the compact copy.  Reciprocals above were taken from the
  // full-width diagonal — the narrow kernels read the matrix values narrow
  // but the update constants at full precision.
  bool fell_back = false;
  storage_ = resolve_storage_policy(storage, a.cols(), a.nnz(), &fell_back);
  if (fell_back) ++stats_.storage_fallbacks;
  if (storage_ == StoragePolicy::kInt32Double)
    a32_ = std::make_shared<const CsrMatrix32>(
        convert_storage<std::int32_t, double>(a));
  else if (storage_ == StoragePolicy::kInt32Mixed)
    amixed_ = std::make_shared<const CsrMatrixMixed>(
        convert_storage<std::int32_t, float>(a));
  stats_.storage = storage_;
}

SpdProblem::SpdProblem(ThreadPool& pool, const SpdProblem& other)
    : pool_(pool),
      a_(other.a_),
      a32_(other.a32_),
      amixed_(other.amixed_),
      storage_(other.storage_),
      inv_diag_(other.inv_diag_),
      scratch_(std::make_unique<detail::ProblemScratch>()) {
  // The compact copy is aliased, not rebuilt — the shard-clone contract
  // (analysis once per service) extends to the narrowing pass.
  stats_.storage = storage_;
  stats_.storage_fallbacks = other.stats_.storage_fallbacks;
  // The partition analysis is built lazily, so unlike the members above it
  // must be read under the prototype's lock (cloning stays safe concurrently
  // with solves on `other`).  The clone aliases the analysis and reports
  // zero partition_builds, like transpose_builds.
  const std::scoped_lock lock(other.mutex_);
  partition_ = other.partition_;
}

SpdProblem::~SpdProblem() = default;

const detail::SpdPartitionState& SpdProblem::partition_state() {
  if (!partition_) {
    partition_ =
        std::make_shared<const detail::SpdPartitionState>(a_, storage_);
    ++stats_.partition_builds;
  }
  return *partition_;
}

void SpdProblem::prepare_partitions() {
  const std::scoped_lock lock(mutex_);
  partition_state();
}

ProblemStats SpdProblem::stats() const {
  const std::scoped_lock lock(mutex_);
  ProblemStats s = stats_;
  s.scratch_allocations = scratch_->engine.allocations();
  return s;
}

SolveOutcome SpdProblem::solve(const std::vector<double>& b,
                               std::vector<double>& x,
                               const SolveControls& controls) {
  const std::scoped_lock lock(mutex_);
  require(static_cast<index_t>(b.size()) == a_.rows() && x.size() == b.size(),
          "SpdProblem::solve: shape mismatch");
  SpdMethod method = controls.method;
  require(method != SpdMethod::kAsyncKaczmarz,
          "SpdProblem::solve: the Kaczmarz row-action method is served by "
          "LsqProblem (it needs no symmetry and covers rectangular and "
          "inconsistent systems)");
  if (method == SpdMethod::kAuto) {
    // The solve_spd guidance: basic asynchronous iterations in the
    // low-accuracy regime, AsyRGS-preconditioned flexible CG when high
    // accuracy is sought.
    method = (controls.rel_tol <= 0.0 || controls.rel_tol >= 1e-4)
                 ? SpdMethod::kAsyncRgs
                 : SpdMethod::kFcgAsyRgs;
  }
  if (method != SpdMethod::kAsyncRgs)
    require(controls.sampling == SamplingPolicy::kUniform,
            "SpdProblem::solve: the Krylov methods draw no random "
            "directions; sampling policies apply to the asynchronous "
            "methods");
  validate_partition_controls(controls, "SpdProblem::solve");
  if (controls.partitions != 0)
    require(method == SpdMethod::kAsyncRgs,
            "SpdProblem::solve: partitioned scheduling applies to the "
            "asynchronous method only (the method must resolve to "
            "kAsyncRgs)");
  SolveOutcome out =
      method != SpdMethod::kAsyncRgs ? solve_krylov(b, x, controls, method)
      : controls.partitions != 0     ? solve_async_partitioned(b, x, controls)
                                     : solve_async_single(b, x, controls);
  out.method_used = method;
  ++stats_.solves;
  return out;
}

SolveOutcome SpdProblem::solve_async_single(const std::vector<double>& b,
                                            std::vector<double>& x,
                                            const SolveControls& controls) {
  switch (storage_) {
    case StoragePolicy::kInt32Double:
      return solve_async_single_on(*a32_, b, x, controls);
    case StoragePolicy::kInt32Mixed:
      return solve_async_single_on(*amixed_, b, x, controls);
    case StoragePolicy::kInt64Double:
      break;
  }
  return solve_async_single_on(a_, b, x, controls);
}

template <class Matrix>
SolveOutcome SpdProblem::solve_async_single_on(const Matrix& a,
                                               const std::vector<double>& b,
                                               std::vector<double>& x,
                                               const SolveControls& controls) {
  using Index = typename Matrix::index_type;
  using Value = typename Matrix::value_type;
  const AsyncRgsOptions options = to_async_rgs_options(controls);
  validate_async_controls(options, "SpdProblem::solve");
  validate_sampling_controls(controls, "SpdProblem::solve");
  const index_t n = a.rows();
  const double beta = options.step_size;
  const int workers = clamp_workers(options.workers, pool_);

  AsyncRgsReport report;
  report.workers = workers;
  report.scan_used = options.scan;

  detail::pack_rhs_diag(b, inv_diag_, scratch_->rhs_diag);
  detail::SingleRhsResidual residual(a, b, x.data(), workers,
                                     scratch_->engine.reduce(workers));

  detail::EngineSampling sampling;
  std::optional<DirectionSampler> residual_sampler;
  if (controls.sampling == SamplingPolicy::kWeighted) {
    if (!weighted_sampler_) {
      // Weights from the bound full-width matrix so the distribution is
      // independent of the storage policy the kernels run against; built
      // once per handle, reused by every later weighted solve.
      const std::vector<double> w = detail::row_sq_norms(a_);
      weighted_sampler_.emplace(DirectionSampler::weighted(w.data(), n));
      ++stats_.sampler_builds;
    }
    sampling.sampler = &*weighted_sampler_;
  } else if (controls.sampling == SamplingPolicy::kResidual) {
    // Seed the table from the caller's initial iterate (deterministic
    // input, so fixed-seed runs keep the multiset contract until the
    // first refresh), then rebuild every resample_sweeps rendezvous.
    std::vector<double> w;
    row_residual_weights(a, b, x.data(), w);
    residual_sampler.emplace(DirectionSampler::residual(w.data(), n));
    sampling.sampler = &*residual_sampler;
    const int period = std::max(1, controls.resample_sweeps);
    DirectionSampler* const sampler = &*residual_sampler;
    const double* const xp = x.data();
    sampling.refresh = [&a, &b, xp, sampler, period, w = std::move(w),
                        calls = 0]() mutable {
      if (++calls % period != 0) return;
      row_residual_weights(a, b, xp, w);
      sampler->rebuild(w.data(), static_cast<index_t>(w.size()));
    };
  }

  WallTimer timer;
  detail::dispatch_atomic_scan(options, [&]<bool kAtomic, ScanMode kScan>() {
    const detail::SingleRhsUpdate<kAtomic, kScan, Index, Value> update{
        a.row_ptr().data(),        a.col_idx().data(), a.values().data(),
        scratch_->rhs_diag.data(), x.data(),           beta};
    detail::run_engine_sampled(pool_, options, n, workers, sampling, update,
                               residual, report, &scratch_->engine);
  });
  report.seconds = timer.seconds();
  if (residual_sampler)
    stats_.sampler_builds += residual_sampler->rebuilds();

  std::string description = std::string("AsyRGS, ") +
                            std::to_string(workers) + " threads, " +
                            sync_name(options.sync) + sampling_note(controls);
  if constexpr (Matrix::kStorage != StoragePolicy::kInt64Double)
    description += std::string(", ") + to_string(Matrix::kStorage) +
                   " storage";
  SolveOutcome out = outcome_from_report(std::move(report), options,
                                         std::move(description));
  out.storage_used = Matrix::kStorage;
  out.sampling_used = controls.sampling;
  return out;
}

SolveOutcome SpdProblem::solve_async_partitioned(
    const std::vector<double>& b, std::vector<double>& x,
    const SolveControls& controls) {
  const detail::SpdPartitionState& st = partition_state();
  switch (storage_) {
    case StoragePolicy::kInt32Double:
      return solve_async_partitioned_on(*st.a32, b, x, controls);
    case StoragePolicy::kInt32Mixed:
      return solve_async_partitioned_on(*st.amixed, b, x, controls);
    case StoragePolicy::kInt64Double:
      break;
  }
  return solve_async_partitioned_on(st.analysis.permuted(), b, x, controls);
}

template <class Matrix>
SolveOutcome SpdProblem::solve_async_partitioned_on(
    const Matrix& a, const std::vector<double>& b, std::vector<double>& x,
    const SolveControls& controls) {
  using Index = typename Matrix::index_type;
  using Value = typename Matrix::value_type;
  const detail::SpdPartitionState& st = *partition_;
  const AsyncRgsOptions options = to_async_rgs_options(controls);
  validate_async_controls(options, "SpdProblem::solve");
  const index_t n = a.rows();
  const double beta = options.step_size;
  const int workers = clamp_workers(options.workers, pool_);

  // The cut is partition-count-keyed and cached on the analysis; the clamp
  // to [1, n] happens inside and is surfaced via partitions_used.
  const std::shared_ptr<const GraphPartition> cut =
      st.analysis.cut(controls.partitions);
  const int partitions = cut->count();

  AsyncRgsReport report;
  report.workers = workers;
  report.scan_used = options.scan;

  // Permute the problem into RCM space: xp[i] = x[perm[i]], bp likewise.
  // The engine then runs entirely on the permuted operator, with the
  // iterate in cache-line-aligned storage and partition boundaries cut at
  // line multiples — cross-worker sharing of an iterate line happens only
  // on deliberate halo steals.
  const std::vector<index_t>& perm = st.analysis.perm();
  aligned_vector<double>& xp = scratch_->xp;
  std::vector<double>& bp = scratch_->bp;
  xp.resize(b.size());
  bp.resize(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    const std::size_t o = static_cast<std::size_t>(perm[i]);
    xp[i] = x[o];
    bp[i] = b[o];
  }

  detail::pack_rhs_diag(bp, st.inv_diag, scratch_->rhs_diag);
  // The residual norm is permutation-invariant, so evaluating it on the
  // permuted system reports exactly the metric the unpartitioned path
  // would.
  detail::SingleRhsResidual residual(a, bp, xp.data(), workers,
                                     scratch_->engine.reduce(workers));

  WallTimer timer;
  detail::dispatch_atomic_scan(options, [&]<bool kAtomic, ScanMode kScan>() {
    const detail::SingleRhsUpdate<kAtomic, kScan, Index, Value> update{
        a.row_ptr().data(),        a.col_idx().data(), a.values().data(),
        scratch_->rhs_diag.data(), xp.data(),          beta};
    detail::run_engine_with_plan(
        pool_, options, n, workers,
        [&](int team) {
          return detail::PartitionedDirectionPlan(options.seed, *cut,
                                                  controls.steal_rate, team);
        },
        /*refresh=*/std::function<void()>{}, update, residual, report,
        &scratch_->engine);
  });
  report.seconds = timer.seconds();

  for (std::size_t i = 0; i < b.size(); ++i)
    x[static_cast<std::size_t>(perm[i])] = xp[i];

  std::string steal = std::to_string(controls.steal_rate);
  // Trim to the informative digits (to_string pads to 6 decimals).
  while (steal.size() > 1 && steal.back() == '0') steal.pop_back();
  if (!steal.empty() && steal.back() == '.') steal.pop_back();
  std::string description =
      std::string("AsyRGS, ") + std::to_string(workers) + " threads, " +
      sync_name(options.sync) + ", " + std::to_string(partitions) +
      " partitions (RCM, steal " + steal + ")";
  if constexpr (Matrix::kStorage != StoragePolicy::kInt64Double)
    description += std::string(", ") + to_string(Matrix::kStorage) +
                   " storage";
  SolveOutcome out = outcome_from_report(std::move(report), options,
                                         std::move(description));
  out.storage_used = Matrix::kStorage;
  out.sampling_used = controls.sampling;
  out.partitions_used = partitions;
  out.steal_rate_used = controls.steal_rate;
  return out;
}

SolveOutcome SpdProblem::solve_krylov(const std::vector<double>& b,
                                      std::vector<double>& x,
                                      const SolveControls& controls,
                                      SpdMethod method) {
  const int workers = clamp_workers(controls.workers, pool_);
  const int max_iterations =
      controls.max_iterations > 0 ? controls.max_iterations : 10000;
  const double rel_tol = controls.rel_tol > 0.0 ? controls.rel_tol : 1e-8;

  SolveOutcome out;
  out.workers = workers;
  out.scan_requested = controls.scan;
  WallTimer timer;
  if (method == SpdMethod::kFcgAsyRgs) {
    // The preconditioner borrows this prepared handle, so every outer
    // iteration's inner sweeps reuse the cached reciprocals and scratch.
    AsyRgsPreconditioner precond(*this, controls.inner_sweeps, workers,
                                 /*step_size=*/1.0, controls.seed,
                                 controls.atomic_writes, controls.scan);
    FcgOptions fo;
    fo.base.max_iterations = max_iterations;
    fo.base.rel_tol = rel_tol;
    fo.base.track_history = controls.track_history;
    const FcgReport rep = fcg_solve(pool_, a_, b, x, precond, fo, workers);
    out.status = rep.base.converged ? SolveStatus::kConverged
                                    : SolveStatus::kToleranceNotReached;
    out.iterations = rep.base.iterations;
    out.relative_residual = rep.base.final_relative_residual;
    out.residual_history = rep.base.residual_history;
    out.scan_executed = controls.scan;  // the preconditioner's inner scans
    out.description = "flexible CG + " + precond.name();
  } else {
    SolveOptions so;
    so.max_iterations = max_iterations;
    so.rel_tol = rel_tol;
    so.track_history = controls.track_history;
    const SolveReport rep =
        cg_solve(pool_, a_, b, x, so, nullptr, controls.workers);
    out.status = rep.converged ? SolveStatus::kConverged
                               : SolveStatus::kToleranceNotReached;
    out.iterations = rep.iterations;
    out.relative_residual = rep.final_relative_residual;
    out.residual_history = rep.residual_history;
    out.scan_executed = ScanMode::kPinned;  // CG has no row-scan mode
    out.description = "conjugate gradients";
  }
  out.seconds = timer.seconds();
  return out;
}

SolveOutcome SpdProblem::solve(const MultiVector& b, MultiVector& x,
                               const SolveControls& controls) {
  const std::scoped_lock lock(mutex_);
  require(b.rows() == a_.rows() && x.rows() == a_.rows() &&
              b.cols() == x.cols(),
          "SpdProblem::solve(block): shape mismatch");
  require(controls.method == SpdMethod::kAuto ||
              controls.method == SpdMethod::kAsyncRgs,
          "SpdProblem::solve(block): only the asynchronous method supports "
          "block right-hand sides");
  validate_sampling_controls(controls, "SpdProblem::solve(block)",
                             /*residual_ok=*/false);
  validate_partition_controls(controls, "SpdProblem::solve(block)");
  require(controls.partitions == 0,
          "SpdProblem::solve(block): partitioned scheduling is "
          "single-right-hand-side only");
  SolveOutcome out;
  switch (storage_) {
    case StoragePolicy::kInt32Double:
      out = solve_block_on(*a32_, b, x, controls);
      break;
    case StoragePolicy::kInt32Mixed:
      out = solve_block_on(*amixed_, b, x, controls);
      break;
    case StoragePolicy::kInt64Double:
      out = solve_block_on(a_, b, x, controls);
      break;
  }
  out.method_used = SpdMethod::kAsyncRgs;
  ++stats_.solves;
  return out;
}

template <class Matrix>
SolveOutcome SpdProblem::solve_block_on(const Matrix& a, const MultiVector& b,
                                        MultiVector& x,
                                        const SolveControls& controls) {
  using Index = typename Matrix::index_type;
  using Value = typename Matrix::value_type;
  const AsyncRgsOptions options = to_async_rgs_options(controls);
  validate_async_controls(options, "SpdProblem::solve(block)");
  const index_t n = a.rows();
  const index_t k = b.cols();
  const double beta = options.step_size;
  const int workers = clamp_workers(options.workers, pool_);

  // At k <= 4 the whole gamma state fits in registers, so the reassociated
  // request is honoured by the small-K kernel; wider blocks keep the pinned
  // column-parallel kernel (and the downgrade stays surfaced).
  const bool reassociated =
      options.scan == ScanMode::kReassociated && k <= 4;

  AsyncRgsReport report;
  report.workers = workers;
  report.scan_used =
      reassociated ? ScanMode::kReassociated : ScanMode::kPinned;

  detail::BlockResidual residual(a, b, x, workers,
                                 scratch_->engine.reduce(workers));

  detail::EngineSampling sampling;
  if (controls.sampling == SamplingPolicy::kWeighted) {
    if (!weighted_sampler_) {
      const std::vector<double> w = detail::row_sq_norms(a_);
      weighted_sampler_.emplace(DirectionSampler::weighted(w.data(), n));
      ++stats_.sampler_builds;
    }
    sampling.sampler = &*weighted_sampler_;
  }

  WallTimer timer;
  if (reassociated) {
    auto launch = [&]<bool kAtomic>() {
      auto run = [&](auto update) {
        detail::run_engine_sampled(pool_, options, n, workers, sampling,
                                   update, residual, report,
                                   &scratch_->engine);
      };
      switch (k) {
        case 1:
          run(detail::BlockRhsUpdateSmallK<kAtomic, 1, Index, Value>{
              &a, &b, &x, inv_diag_.data(), beta});
          break;
        case 2:
          run(detail::BlockRhsUpdateSmallK<kAtomic, 2, Index, Value>{
              &a, &b, &x, inv_diag_.data(), beta});
          break;
        case 3:
          run(detail::BlockRhsUpdateSmallK<kAtomic, 3, Index, Value>{
              &a, &b, &x, inv_diag_.data(), beta});
          break;
        default:
          run(detail::BlockRhsUpdateSmallK<kAtomic, 4, Index, Value>{
              &a, &b, &x, inv_diag_.data(), beta});
          break;
      }
    };
    if (options.atomic_writes)
      launch.template operator()<true>();
    else
      launch.template operator()<false>();
  } else {
    // Per-worker gamma scratch in one aligned slab, strided to whole cache
    // lines with a guard line between workers: adjacent heap allocations
    // here would false-share and destroy block-solve scaling.
    const std::size_t doubles_per_line = kCacheLineBytes / sizeof(double);
    const std::size_t stride =
        ((static_cast<std::size_t>(k) + doubles_per_line - 1) /
         doubles_per_line) *
            doubles_per_line +
        doubles_per_line;
    double* const gamma = scratch_->engine.slab(workers, stride);
    if (options.atomic_writes) {
      const detail::BlockRhsUpdate<true, Index, Value> update{
          &a, &b, &x, inv_diag_.data(), beta, gamma, stride};
      detail::run_engine_sampled(pool_, options, n, workers, sampling, update,
                                 residual, report, &scratch_->engine);
    } else {
      const detail::BlockRhsUpdate<false, Index, Value> update{
          &a, &b, &x, inv_diag_.data(), beta, gamma, stride};
      detail::run_engine_sampled(pool_, options, n, workers, sampling, update,
                                 residual, report, &scratch_->engine);
    }
  }
  report.seconds = timer.seconds();

  std::string description = std::string("AsyRGS block, ") +
                            std::to_string(workers) + " threads, " +
                            std::to_string(k) + " rhs, " +
                            sync_name(options.sync) + sampling_note(controls);
  if (options.scan == ScanMode::kReassociated && !reassociated)
    description += "; reassociated scan requested but blocks wider than 4 "
                   "right-hand sides run the pinned column-parallel scan";
  if constexpr (Matrix::kStorage != StoragePolicy::kInt64Double)
    description += std::string(", ") + to_string(Matrix::kStorage) +
                   " storage";
  SolveOutcome out = outcome_from_report(std::move(report), options,
                                         std::move(description));
  out.storage_used = Matrix::kStorage;
  out.sampling_used = controls.sampling;
  return out;
}

// --- LsqProblem --------------------------------------------------------------

namespace {

/// Builds the compact (A, A^T) pair for a resolved least-squares policy.
/// Both operands narrow or neither: the update kernel walks rows of A and
/// rows of A^T in one pass, and mixing widths there would force per-access
/// dispatch.
template <class Index, class Value>
void narrow_lsq_pair(const CsrMatrix& a, const CsrMatrix& at,
                     std::shared_ptr<const CsrMatrixT<Index, Value>>& a_out,
                     std::shared_ptr<const CsrMatrixT<Index, Value>>& at_out) {
  a_out = std::make_shared<const CsrMatrixT<Index, Value>>(
      convert_storage<Index, Value>(a));
  at_out = std::make_shared<const CsrMatrixT<Index, Value>>(
      convert_storage<Index, Value>(at));
}

}  // namespace

LsqProblem::LsqProblem(ThreadPool& pool, const CsrMatrix& a,
                       StorageMode storage)
    : pool_(pool),
      a_(a),
      scratch_(std::make_unique<detail::ProblemScratch>()) {
  bool built_now = false;
  at_holder_ = a.transpose_shared(&built_now);
  at_ = at_holder_.get();
  if (built_now) ++stats_.transpose_builds;
  col_sq_ = detail::column_sq_norms(*at_);
  for (double s : col_sq_)
    require(s > 0.0, "LsqProblem: zero column (A must have full rank)");
  // Kaczmarz prepare-time analysis: squared row norms double as the
  // Strohmer-Vershynin sampling weights and (reciprocated) as the row
  // projection denominators.  Zero rows are legal — their weight is 0 and
  // their inverse is 0, so the row is never preferred and its update no-ops.
  row_sq_ = detail::row_sq_norms(a);
  inv_row_sq_.resize(row_sq_.size());
  for (std::size_t i = 0; i < row_sq_.size(); ++i)
    inv_row_sq_[i] = row_sq_[i] > 0.0 ? 1.0 / row_sq_[i] : 0.0;
  ++stats_.validation_passes;
  // A^T's column indices are row indices of A, so narrowing must fit the
  // larger of the two dimensions.
  bool fell_back = false;
  storage_ = resolve_storage_policy(storage, std::max(a.rows(), a.cols()),
                                    a.nnz(), &fell_back);
  if (fell_back) ++stats_.storage_fallbacks;
  if (storage_ == StoragePolicy::kInt32Double)
    narrow_lsq_pair<std::int32_t, double>(a, *at_, a32_, at32_);
  else if (storage_ == StoragePolicy::kInt32Mixed)
    narrow_lsq_pair<std::int32_t, float>(a, *at_, amixed_, atmixed_);
  stats_.storage = storage_;
}

LsqProblem::LsqProblem(ThreadPool& pool, const CsrMatrix& a,
                       const CsrMatrix& at, StorageMode storage)
    : pool_(pool),
      a_(a),
      at_(&at),
      scratch_(std::make_unique<detail::ProblemScratch>()) {
  require(at.rows() == a.cols() && at.cols() == a.rows(),
          "LsqProblem: `at` must be the transpose of `a`");
  col_sq_ = detail::column_sq_norms(at);
  for (double s : col_sq_)
    require(s > 0.0, "LsqProblem: zero column (A must have full rank)");
  // Kaczmarz prepare-time analysis: squared row norms double as the
  // Strohmer-Vershynin sampling weights and (reciprocated) as the row
  // projection denominators.  Zero rows are legal — their weight is 0 and
  // their inverse is 0, so the row is never preferred and its update no-ops.
  row_sq_ = detail::row_sq_norms(a);
  inv_row_sq_.resize(row_sq_.size());
  for (std::size_t i = 0; i < row_sq_.size(); ++i)
    inv_row_sq_[i] = row_sq_[i] > 0.0 ? 1.0 / row_sq_[i] : 0.0;
  ++stats_.validation_passes;
  bool fell_back = false;
  storage_ = resolve_storage_policy(storage, std::max(a.rows(), a.cols()),
                                    a.nnz(), &fell_back);
  if (fell_back) ++stats_.storage_fallbacks;
  if (storage_ == StoragePolicy::kInt32Double)
    narrow_lsq_pair<std::int32_t, double>(a, at, a32_, at32_);
  else if (storage_ == StoragePolicy::kInt32Mixed)
    narrow_lsq_pair<std::int32_t, float>(a, at, amixed_, atmixed_);
  stats_.storage = storage_;
}

LsqProblem::LsqProblem(ThreadPool& pool, const LsqProblem& other)
    : pool_(pool),
      a_(other.a_),
      at_holder_(other.at_holder_),
      at_(other.at_),
      a32_(other.a32_),
      at32_(other.at32_),
      amixed_(other.amixed_),
      atmixed_(other.atmixed_),
      storage_(other.storage_),
      col_sq_(other.col_sq_),
      row_sq_(other.row_sq_),
      inv_row_sq_(other.inv_row_sq_),
      scratch_(std::make_unique<detail::ProblemScratch>()) {
  stats_.storage = storage_;
  stats_.storage_fallbacks = other.stats_.storage_fallbacks;
}

LsqProblem::~LsqProblem() = default;

ProblemStats LsqProblem::stats() const {
  const std::scoped_lock lock(mutex_);
  ProblemStats s = stats_;
  s.scratch_allocations = scratch_->engine.allocations();
  return s;
}

SolveOutcome LsqProblem::solve(const std::vector<double>& b,
                               std::vector<double>& x,
                               const SolveControls& controls) {
  const std::scoped_lock lock(mutex_);
  require(static_cast<index_t>(b.size()) == a_.rows() &&
              static_cast<index_t>(x.size()) == a_.cols(),
          "LsqProblem::solve: shape mismatch");
  require(controls.method == SpdMethod::kAuto ||
              controls.method == SpdMethod::kAsyncRgs ||
              controls.method == SpdMethod::kAsyncKaczmarz,
          "LsqProblem::solve: least squares is served by the asynchronous "
          "methods (kAsyncRgs coordinate descent or kAsyncKaczmarz row "
          "action)");
  validate_partition_controls(controls, "LsqProblem::solve");
  require(controls.partitions == 0,
          "LsqProblem::solve: partitioned scheduling is served by "
          "SpdProblem (it partitions a symmetric operator's graph)");
  const bool kaczmarz = controls.method == SpdMethod::kAsyncKaczmarz;
  SolveOutcome out;
  switch (storage_) {
    case StoragePolicy::kInt32Double:
      out = kaczmarz ? solve_kaczmarz_on(*a32_, *at32_, b, x, controls)
                     : solve_on(*a32_, *at32_, b, x, controls);
      break;
    case StoragePolicy::kInt32Mixed:
      out = kaczmarz ? solve_kaczmarz_on(*amixed_, *atmixed_, b, x, controls)
                     : solve_on(*amixed_, *atmixed_, b, x, controls);
      break;
    case StoragePolicy::kInt64Double:
      out = kaczmarz ? solve_kaczmarz_on(a_, *at_, b, x, controls)
                     : solve_on(a_, *at_, b, x, controls);
      break;
  }
  out.method_used =
      kaczmarz ? SpdMethod::kAsyncKaczmarz : SpdMethod::kAsyncRgs;
  ++stats_.solves;
  return out;
}

template <class Matrix>
SolveOutcome LsqProblem::solve_on(const Matrix& a, const Matrix& at,
                                  const std::vector<double>& b,
                                  std::vector<double>& x,
                                  const SolveControls& controls) {
  using Index = typename Matrix::index_type;
  using Value = typename Matrix::value_type;
  const AsyncRgsOptions options = to_async_rgs_options(controls);
  validate_async_controls(options, "LsqProblem::solve");
  validate_sampling_controls(controls, "LsqProblem::solve");
  const index_t n = a.cols();
  const double beta = options.step_size;
  const int workers = clamp_workers(options.workers, pool_);

  AsyncRgsReport report;
  report.workers = workers;
  report.scan_used = options.scan;

  const bool check = options.track_history || options.rel_tol > 0.0;
  double* const r =
      check ? scratch_->engine.dense(static_cast<std::size_t>(a.rows()))
            : nullptr;
  detail::LsqResidual residual(a, at, b, x.data(), workers,
                               scratch_->engine.reduce(workers), r, check);

  detail::EngineSampling sampling;
  std::optional<DirectionSampler> residual_sampler;
  if (controls.sampling == SamplingPolicy::kWeighted) {
    if (!weighted_cols_) {
      // Coordinate-descent weights: the column squared norms already
      // computed (full-width) at preparation.
      weighted_cols_.emplace(DirectionSampler::weighted(col_sq_.data(), n));
      ++stats_.sampler_builds;
    }
    sampling.sampler = &*weighted_cols_;
  } else if (controls.sampling == SamplingPolicy::kResidual) {
    std::vector<double> rbuf, w;
    col_residual_weights(a, at, b, x.data(), rbuf, w);
    residual_sampler.emplace(DirectionSampler::residual(w.data(), n));
    sampling.sampler = &*residual_sampler;
    const int period = std::max(1, controls.resample_sweeps);
    DirectionSampler* const sampler = &*residual_sampler;
    const double* const xp = x.data();
    sampling.refresh = [&a, &at, &b, xp, sampler, period,
                        rbuf = std::move(rbuf), w = std::move(w),
                        calls = 0]() mutable {
      if (++calls % period != 0) return;
      col_residual_weights(a, at, b, xp, rbuf, w);
      sampler->rebuild(w.data(), static_cast<index_t>(w.size()));
    };
  }

  WallTimer timer;
  detail::dispatch_atomic_scan(options, [&]<bool kAtomic, ScanMode kScan>() {
    const detail::LsqUpdate<kAtomic, kScan, Index, Value> update{
        &a, &at, b.data(), col_sq_.data(), x.data(), beta};
    detail::run_engine_sampled(pool_, options, n, workers, sampling, update,
                               residual, report, &scratch_->engine);
  });
  report.seconds = timer.seconds();
  if (residual_sampler)
    stats_.sampler_builds += residual_sampler->rebuilds();

  std::string description = std::string("AsyRCD least squares, ") +
                            std::to_string(workers) + " threads, " +
                            sync_name(options.sync) + sampling_note(controls);
  if constexpr (Matrix::kStorage != StoragePolicy::kInt64Double)
    description += std::string(", ") + to_string(Matrix::kStorage) +
                   " storage";
  SolveOutcome out = outcome_from_report(std::move(report), options,
                                         std::move(description));
  out.storage_used = Matrix::kStorage;
  out.sampling_used = controls.sampling;
  return out;
}

template <class Matrix>
SolveOutcome LsqProblem::solve_kaczmarz_on(const Matrix& a, const Matrix& at,
                                           const std::vector<double>& b,
                                           std::vector<double>& x,
                                           const SolveControls& controls) {
  using Index = typename Matrix::index_type;
  using Value = typename Matrix::value_type;
  const AsyncRgsOptions options = to_async_rgs_options(controls);
  validate_async_controls(options, "LsqProblem::solve(kaczmarz)");
  validate_sampling_controls(controls, "LsqProblem::solve(kaczmarz)");
  // Directions are the ROWS of A (one sweep = m row projections), unlike
  // coordinate descent whose directions are columns.
  const index_t m = a.rows();
  const double beta = options.step_size;
  const int workers = clamp_workers(options.workers, pool_);

  AsyncRgsReport report;
  report.workers = workers;
  report.scan_used = options.scan;

  // Same normal-equations metric as coordinate descent, so outcomes of the
  // two methods are directly comparable (and inconsistent systems — where
  // ||b - Ax|| cannot reach zero — still report a meaningful residual).
  const bool check = options.track_history || options.rel_tol > 0.0;
  double* const r =
      check ? scratch_->engine.dense(static_cast<std::size_t>(a.rows()))
            : nullptr;
  detail::LsqResidual residual(a, at, b, x.data(), workers,
                               scratch_->engine.reduce(workers), r, check);

  detail::EngineSampling sampling;
  std::optional<DirectionSampler> residual_sampler;
  if (controls.sampling == SamplingPolicy::kWeighted) {
    if (!weighted_rows_) {
      // The Strohmer-Vershynin distribution p_i ∝ ||A_i||^2, from the
      // prepare-time norms of the full-width matrix.
      weighted_rows_.emplace(DirectionSampler::weighted(row_sq_.data(), m));
      ++stats_.sampler_builds;
    }
    sampling.sampler = &*weighted_rows_;
  } else if (controls.sampling == SamplingPolicy::kResidual) {
    std::vector<double> w;
    row_residual_weights(a, b, x.data(), w);
    residual_sampler.emplace(DirectionSampler::residual(w.data(), m));
    sampling.sampler = &*residual_sampler;
    const int period = std::max(1, controls.resample_sweeps);
    DirectionSampler* const sampler = &*residual_sampler;
    const double* const xp = x.data();
    sampling.refresh = [&a, &b, xp, sampler, period, w = std::move(w),
                        calls = 0]() mutable {
      if (++calls % period != 0) return;
      row_residual_weights(a, b, xp, w);
      sampler->rebuild(w.data(), static_cast<index_t>(w.size()));
    };
  }

  WallTimer timer;
  detail::dispatch_atomic_scan(options, [&]<bool kAtomic, ScanMode kScan>() {
    const detail::KaczmarzUpdate<kAtomic, kScan, Index, Value> update{
        a.row_ptr().data(), a.col_idx().data(), a.values().data(), b.data(),
        inv_row_sq_.data(), x.data(),           beta};
    detail::run_engine_sampled(pool_, options, m, workers, sampling, update,
                               residual, report, &scratch_->engine);
  });
  report.seconds = timer.seconds();
  if (residual_sampler)
    stats_.sampler_builds += residual_sampler->rebuilds();

  std::string description = std::string("AsyKaczmarz least squares, ") +
                            std::to_string(workers) + " threads, " +
                            sync_name(options.sync) + sampling_note(controls);
  if constexpr (Matrix::kStorage != StoragePolicy::kInt64Double)
    description += std::string(", ") + to_string(Matrix::kStorage) +
                   " storage";
  SolveOutcome out = outcome_from_report(std::move(report), options,
                                         std::move(description));
  out.storage_used = Matrix::kStorage;
  out.sampling_used = controls.sampling;
  return out;
}

}  // namespace asyrgs
