#include "asyrgs/core/async_lsq.hpp"

#include <atomic>
#include <cmath>

#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/support/atomics.hpp"
#include "asyrgs/support/barrier.hpp"
#include "asyrgs/support/prng.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

namespace {

/// Squared Euclidean norms of the columns of A, read off the rows of A^T.
std::vector<double> column_sq_norms(const CsrMatrix& at) {
  std::vector<double> sq(static_cast<std::size_t>(at.rows()), 0.0);
  for (index_t j = 0; j < at.rows(); ++j) {
    double acc = 0.0;
    for (double v : at.row_vals(j)) acc += v * v;
    sq[j] = acc;
  }
  return sq;
}

/// ||A^T (b - A x)|| / ||A^T b|| computed serially (synchronization points
/// and sequential code only).
double normal_residual(const CsrMatrix& a, const std::vector<double>& b,
                       const std::vector<double>& x) {
  std::vector<double> r(static_cast<std::size_t>(a.rows()));
  a.multiply(x.data(), r.data());
  for (index_t i = 0; i < a.rows(); ++i) r[i] = b[i] - r[i];
  std::vector<double> g(static_cast<std::size_t>(a.cols()));
  a.multiply_transpose(r.data(), g.data());
  std::vector<double> g0(static_cast<std::size_t>(a.cols()));
  a.multiply_transpose(b.data(), g0.data());
  const double denom = nrm2(g0);
  return denom > 0.0 ? nrm2(g) / denom : nrm2(g);
}

}  // namespace

RgsReport rcd_lsq_solve(const CsrMatrix& a, const std::vector<double>& b,
                        std::vector<double>& x, const RgsOptions& options) {
  require(static_cast<index_t>(b.size()) == a.rows() &&
              static_cast<index_t>(x.size()) == a.cols(),
          "rcd_lsq_solve: shape mismatch");
  require(options.step_size > 0.0 && options.step_size < 2.0,
          "rcd_lsq_solve: step size must be in (0, 2)");
  const index_t n = a.cols();
  const CsrMatrix at = a.transpose();
  const std::vector<double> col_sq = column_sq_norms(at);
  for (double s : col_sq)
    require(s > 0.0, "rcd_lsq_solve: zero column (A must have full rank)");

  const Philox4x32 dirs(options.seed);
  const double beta = options.step_size;

  WallTimer timer;
  RgsReport report;

  // Maintained residual r = b - A x (iteration (20) bookkeeping).
  std::vector<double> r(static_cast<std::size_t>(a.rows()));
  a.multiply(x.data(), r.data());
  for (index_t i = 0; i < a.rows(); ++i) r[i] = b[i] - r[i];

  std::uint64_t pos = 0;
  for (int sweep = 1; sweep <= options.sweeps; ++sweep) {
    for (index_t t = 0; t < n; ++t, ++pos) {
      const index_t j = dirs.index_at(pos, n);
      // gamma = A_{:,j}^T r / ||A_{:,j}||^2 over the column's row support.
      const auto rows = at.row_cols(j);
      const auto vals = at.row_vals(j);
      double gamma = 0.0;
      for (std::size_t s = 0; s < rows.size(); ++s)
        gamma += vals[s] * r[rows[s]];
      gamma *= beta / col_sq[j];
      x[j] += gamma;
      for (std::size_t s = 0; s < rows.size(); ++s)
        r[rows[s]] -= gamma * vals[s];
    }
    report.sweeps_done = sweep;
    report.updates += n;

    if (options.track_history || options.rel_tol > 0.0) {
      const double rel = normal_residual(a, b, x);
      report.final_relative_residual = rel;
      if (options.track_history) report.residual_history.push_back(rel);
      if (options.rel_tol > 0.0 && rel <= options.rel_tol) {
        report.converged = true;
        break;
      }
    }
  }
  report.seconds = timer.seconds();
  return report;
}

AsyncRgsReport async_lsq_solve(ThreadPool& pool, const CsrMatrix& a,
                               const CsrMatrix& at,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const AsyncRgsOptions& options) {
  require(static_cast<index_t>(b.size()) == a.rows() &&
              static_cast<index_t>(x.size()) == a.cols(),
          "async_lsq_solve: shape mismatch");
  require(at.rows() == a.cols() && at.cols() == a.rows(),
          "async_lsq_solve: `at` must be the transpose of `a`");
  require(options.step_size > 0.0 && options.step_size < 2.0,
          "async_lsq_solve: step size must be in (0, 2)");
  const index_t n = a.cols();
  const std::vector<double> col_sq = column_sq_norms(at);
  for (double s : col_sq)
    require(s > 0.0, "async_lsq_solve: zero column (A must have full rank)");

  const Philox4x32 dirs(options.seed);
  const double beta = options.step_size;
  int workers = options.workers > 0 ? options.workers : pool.size();
  if (workers > pool.size()) workers = pool.size();

  AsyncRgsReport report;
  report.workers = workers;

  // One asynchronous column update (iteration (21)): the residual entries
  // for the column's rows are recomputed from shared x on every step.
  auto update_column = [&](index_t j) {
    const auto rows = at.row_cols(j);
    const auto col_vals = at.row_vals(j);
    double gamma = 0.0;
    for (std::size_t s = 0; s < rows.size(); ++s) {
      const index_t i = rows[s];
      // r_i = b_i - A_i x with relaxed-atomic reads of the shared iterate.
      double ri = b[i];
      const auto arow_cols = a.row_cols(i);
      const auto arow_vals = a.row_vals(i);
      for (std::size_t q = 0; q < arow_cols.size(); ++q)
        ri -= arow_vals[q] * atomic_load_relaxed(x[arow_cols[q]]);
      gamma += col_vals[s] * ri;
    }
    const double delta = beta * gamma / col_sq[j];
    if (options.atomic_writes)
      atomic_add_relaxed(x[j], delta);
    else
      racy_add(x[j], delta);
  };

  WallTimer timer;
  if (options.sync == SyncMode::kFreeRunning) {
    const std::uint64_t total =
        static_cast<std::uint64_t>(options.sweeps) *
        static_cast<std::uint64_t>(n);
    pool.run_team(workers, [&](int id, int team) {
      for (std::uint64_t pos = static_cast<std::uint64_t>(id); pos < total;
           pos += static_cast<std::uint64_t>(team)) {
        update_column(dirs.index_at(pos, n));
      }
    });
    report.sweeps_done = options.sweeps;
    report.updates = static_cast<long long>(total);
  } else {
    SpinBarrier barrier(workers);
    std::atomic<bool> stop{false};
    std::atomic<int> sweeps_done{0};
    const bool check = options.track_history || options.rel_tol > 0.0;
    pool.run_team(workers, [&](int id, int team) {
      const bool use_barrier = (team == workers && team > 1);
      for (int sweep = 0; sweep < options.sweeps; ++sweep) {
        const std::uint64_t base = static_cast<std::uint64_t>(sweep) *
                                   static_cast<std::uint64_t>(n);
        for (index_t t = id; t < n; t += team)
          update_column(dirs.index_at(base + static_cast<std::uint64_t>(t), n));
        if (use_barrier) barrier.arrive_and_wait();
        if (id == 0) {
          sweeps_done.store(sweep + 1, std::memory_order_relaxed);
          if (check) {
            const double rel = normal_residual(a, b, x);
            report.final_relative_residual = rel;
            if (options.track_history)
              report.residual_history.push_back(rel);
            if (options.rel_tol > 0.0 && rel <= options.rel_tol) {
              report.converged = true;
              stop.store(true, std::memory_order_release);
            }
          }
        }
        if (use_barrier) barrier.arrive_and_wait();
        if (stop.load(std::memory_order_acquire)) break;
      }
    });
    report.sweeps_done = sweeps_done.load(std::memory_order_relaxed);
    report.updates =
        static_cast<long long>(report.sweeps_done) * static_cast<long long>(n);
  }
  report.seconds = timer.seconds();
  return report;
}

AsyncRgsReport async_lsq_solve(ThreadPool& pool, const CsrMatrix& a,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const AsyncRgsOptions& options) {
  const CsrMatrix at = a.transpose();
  return async_lsq_solve(pool, a, at, b, x, options);
}

}  // namespace asyrgs
