#include "asyrgs/sparse/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "asyrgs/sparse/coo.hpp"

namespace asyrgs {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Reads the next line that is neither empty nor a '%' comment.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos) continue;
    if (line[pos] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

template <class Index, class Value>
CsrMatrixT<Index, Value> read_matrix_market_as(std::istream& in) {
  std::string header;
  require(static_cast<bool>(std::getline(in, header)),
          "matrix market: empty stream");
  std::istringstream hs(lower(header));
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  require(banner == "%%matrixmarket", "matrix market: missing banner");
  require(object == "matrix", "matrix market: object must be 'matrix'");
  require(format == "coordinate",
          "matrix market: only coordinate format supported for matrices");
  require(field == "real" || field == "integer",
          "matrix market: field must be real or integer");
  require(symmetry == "general" || symmetry == "symmetric",
          "matrix market: symmetry must be general or symmetric");
  const bool symmetric = (symmetry == "symmetric");

  std::string line;
  require(next_content_line(in, line), "matrix market: missing size line");
  std::istringstream ss(line);
  index_t rows = 0, cols = 0;
  nnz_t entries = 0;
  ss >> rows >> cols >> entries;
  require(!ss.fail(), "matrix market: malformed size line");
  require(rows > 0 && cols > 0 && entries >= 0,
          "matrix market: invalid dimensions");

  // The builder stores triplets at the target (Index, Value) width from the
  // first entry and validates the column range once here — no full-width
  // intermediate pass.  The builder constructor is the overflow guard: a
  // declared column count beyond the index width throws before any entry is
  // read.
  CooBuilderT<Index, Value> builder(rows, cols);
  builder.reserve(static_cast<std::size_t>(symmetric ? 2 * entries : entries));
  for (nnz_t t = 0; t < entries; ++t) {
    require(next_content_line(in, line),
            "matrix market: fewer entries than declared");
    std::istringstream es(line);
    index_t i = 0, j = 0;
    double v = 0.0;
    es >> i >> j >> v;
    require(!es.fail(), "matrix market: malformed entry line");
    if (symmetric) {
      require(i >= j, "matrix market: symmetric file must store the lower "
                      "triangle (found entry above the diagonal)");
      builder.add_symmetric(i - 1, j - 1, v);
    } else {
      builder.add(i - 1, j - 1, v);
    }
  }
  return builder.to_csr();
}

template <class Index, class Value>
CsrMatrixT<Index, Value> read_matrix_market_file_as(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), ("cannot open matrix file: " + path).c_str());
  return read_matrix_market_as<Index, Value>(in);
}

CsrMatrix read_matrix_market(std::istream& in) {
  return read_matrix_market_as<std::int64_t, double>(in);
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  return read_matrix_market_file_as<std::int64_t, double>(path);
}

template <class Index, class Value>
void write_matrix_market(std::ostream& out, const CsrMatrixT<Index, Value>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by asyrgs\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out << std::setprecision(17);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t t = 0; t < cols.size(); ++t)
      out << (i + 1) << ' ' << (cols[t] + 1) << ' '
          << static_cast<double>(vals[t]) << '\n';
  }
}

template <class Index, class Value>
void write_matrix_market_file(const std::string& path,
                              const CsrMatrixT<Index, Value>& a) {
  std::ofstream out(path);
  require(out.good(), ("cannot open output file: " + path).c_str());
  write_matrix_market(out, a);
}

// Instantiate the policy-aware entry points for the three supported policies.
#define ASYRGS_INSTANTIATE_IO(Index, Value)                                   \
  template CsrMatrixT<Index, Value> read_matrix_market_as<Index, Value>(      \
      std::istream&);                                                         \
  template CsrMatrixT<Index, Value> read_matrix_market_file_as<Index, Value>( \
      const std::string&);                                                    \
  template void write_matrix_market<Index, Value>(                            \
      std::ostream&, const CsrMatrixT<Index, Value>&);                        \
  template void write_matrix_market_file<Index, Value>(                       \
      const std::string&, const CsrMatrixT<Index, Value>&);

ASYRGS_INSTANTIATE_IO(std::int64_t, double)
ASYRGS_INSTANTIATE_IO(std::int32_t, double)
ASYRGS_INSTANTIATE_IO(std::int32_t, float)

#undef ASYRGS_INSTANTIATE_IO

std::vector<double> read_vector_market(std::istream& in) {
  std::string header;
  require(static_cast<bool>(std::getline(in, header)),
          "vector market: empty stream");
  std::istringstream hs(lower(header));
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  require(banner == "%%matrixmarket" && object == "matrix" &&
              format == "array" && (field == "real" || field == "integer"),
          "vector market: expected 'matrix array real' header");

  std::string line;
  require(next_content_line(in, line), "vector market: missing size line");
  std::istringstream ss(line);
  index_t rows = 0, cols = 0;
  ss >> rows >> cols;
  require(!ss.fail() && rows > 0 && cols == 1,
          "vector market: expected an n x 1 array");

  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(rows));
  for (index_t i = 0; i < rows; ++i) {
    require(next_content_line(in, line),
            "vector market: fewer values than declared");
    std::istringstream es(line);
    double val = 0.0;
    es >> val;
    require(!es.fail(), "vector market: malformed value line");
    v.push_back(val);
  }
  return v;
}

void write_vector_market(std::ostream& out, const std::vector<double>& v) {
  out << "%%MatrixMarket matrix array real general\n";
  out << v.size() << " 1\n";
  out << std::setprecision(17);
  for (double x : v) out << x << '\n';
}

}  // namespace asyrgs
