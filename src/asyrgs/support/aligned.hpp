// Cache-line aligned storage helpers.
//
// Shared per-worker counters in the asynchronous solver are padded to a cache
// line to avoid false sharing; large numeric arrays are aligned for vector
// loads.
#pragma once

#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

/// Minimal aligned allocator (C++17 aligned operator new) for std::vector.
template <typename T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;

  /// Explicit rebind: allocator_traits cannot synthesize it because of the
  /// non-type Alignment parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// std::vector with cache-line-aligned storage.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// A T padded to a full cache line; used for per-worker mutable slots in
/// arrays shared across threads.
template <typename T>
struct alignas(kCacheLineBytes) Padded {
  T value{};
};

}  // namespace asyrgs
