// Figure 3 — Parallel performance of Flexible-CG preconditioned by AsyRGS.
//
// Paper (Section 9, Figure 3), two panels over the thread sweep, for 2 and
// 10 inner preconditioner sweeps:
//   left:  wall time to convergence (relative residual 1e-8; median of 5
//          runs).  Expected: good speedups (paper: >32x for 2 sweeps, ~30x
//          for 10 sweeps at 64 threads).
//   right: outer (Flexible-CG) iteration count.  Expected: roughly flat in
//          the thread count — the preconditioner quality does not visibly
//          degrade with asynchronism — with more variability at 2 sweeps.
#include <iostream>

#include "bench_common.hpp"

using namespace asyrgs;
using namespace asyrgs::bench;

int main(int argc, char** argv) {
  CliParser cli("fig3_fcg_scaling",
                "Figure 3: FCG+AsyRGS time and outer iterations vs threads");
  GramCli gram_cli = add_gram_options(cli);
  auto threads_opt =
      cli.add_int_list("threads", {}, "thread sweep (default 1,2,4,..,max)");
  auto sweeps_list =
      cli.add_int_list("inner-sweeps", {2, 10}, "preconditioner sweep counts");
  auto runs = cli.add_int("runs", 3, "repetitions (median reported)");
  auto tol = cli.add_double("tol", 1e-8, "outer relative-residual target");
  auto max_outer = cli.add_int("max-outer", 2000, "outer iteration cap");
  cli.parse(argc, argv);

  print_banner("fig3_fcg_scaling", "Figure 3 (Section 9), both panels");
  const SocialGram system = build_gram(gram_cli);
  const CsrMatrix a = scaled_gram(system);
  print_matrix_profile(a);

  ThreadPool& pool = ThreadPool::global();
  const std::vector<int> thread_sweep = thread_sweep_from(*threads_opt);
  const std::vector<double> b = random_vector(a.rows(), 11);

  Table table({"inner_sweeps", "threads", "time_s", "speedup", "outer_iters",
               "converged"});

  for (std::int64_t inner : *sweeps_list) {
    double t1 = 0.0;
    for (int threads : thread_sweep) {
      std::vector<double> times, outers;
      bool all_converged = true;
      for (int run = 0; run < *runs; ++run) {
        AsyRgsPreconditioner precond(
            pool, a, static_cast<int>(inner), threads, 1.0,
            /*seed=*/500 + static_cast<std::uint64_t>(run));
        FcgOptions fo;
        fo.base.max_iterations = static_cast<int>(*max_outer);
        fo.base.rel_tol = *tol;
        std::vector<double> x(a.rows(), 0.0);
        WallTimer t;
        const FcgReport rep = fcg_solve(pool, a, b, x, precond, fo, threads);
        times.push_back(t.seconds());
        outers.push_back(rep.base.iterations);
        all_converged = all_converged && rep.base.converged;
      }
      const double med_time = median(times);
      if (threads == thread_sweep.front()) t1 = med_time;
      table.add_row({std::to_string(inner), std::to_string(threads),
                     fmt_fixed(med_time, 3), fmt_fixed(t1 / med_time, 2),
                     fmt_fixed(median(outers), 0),
                     all_converged ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "# paper shape check: speedup grows with threads for both "
               "configs; outer_iters ~ flat in threads.\n";
  return 0;
}
