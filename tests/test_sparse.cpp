// Sparse-layer tests: COO assembly, CSR invariants and ops, diagonal
// scaling, matrix properties.
#include <gtest/gtest.h>

#include <cmath>

#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/sparse/properties.hpp"
#include "asyrgs/sparse/scale.hpp"

namespace asyrgs {
namespace {

CsrMatrix small_matrix() {
  // [ 2 -1  0 ]
  // [-1  2 -1 ]
  // [ 0 -1  2 ]
  return laplacian_1d(3);
}

// --- CooBuilder ---------------------------------------------------------------

TEST(Coo, BuildsSortedCsr) {
  CooBuilder b(2, 3);
  b.add(1, 2, 5.0);
  b.add(0, 0, 1.0);
  b.add(1, 0, 4.0);
  const CsrMatrix m = b.to_csr();
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
}

TEST(Coo, SumsDuplicates) {
  CooBuilder b(2, 2);
  b.add(0, 1, 1.5);
  b.add(0, 1, 2.5);
  b.add(0, 1, -1.0);
  const CsrMatrix m = b.to_csr();
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);
}

TEST(Coo, AddSymmetricMirrorsOffDiagonal) {
  CooBuilder b(3, 3);
  b.add_symmetric(2, 0, 7.0);
  b.add_symmetric(1, 1, 3.0);
  const CsrMatrix m = b.to_csr();
  EXPECT_DOUBLE_EQ(m.at(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 3.0);
  EXPECT_EQ(m.nnz(), 3);
}

TEST(Coo, RejectsOutOfRange) {
  CooBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), Error);
  EXPECT_THROW(b.add(0, -1, 1.0), Error);
  EXPECT_THROW(CooBuilder(0, 1), Error);
}

// --- CsrMatrix -----------------------------------------------------------------

TEST(Csr, ValidatesStructure) {
  // row_ptr not starting at zero
  EXPECT_THROW(CsrMatrix(1, 1, {1, 1}, {}, {}), Error);
  // row_ptr wrong size
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), Error);
  // column out of range
  EXPECT_THROW(CsrMatrix(1, 1, {0, 1}, {1}, {1.0}), Error);
  // unsorted columns
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {2, 0}, {1.0, 2.0}), Error);
  // duplicate columns in a row
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {1, 1}, {1.0, 2.0}), Error);
  // value/col size mismatch
  EXPECT_THROW(CsrMatrix(1, 2, {0, 1}, {0}, {1.0, 2.0}), Error);
}

TEST(Csr, RowAccessAndDot) {
  const CsrMatrix m = small_matrix();
  EXPECT_EQ(m.row_nnz(0), 2);
  EXPECT_EQ(m.row_nnz(1), 3);
  const double x[] = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(m.row_dot(0, x), 2.0 * 1 - 1.0 * 2);
  EXPECT_DOUBLE_EQ(m.row_dot(1, x), -1.0 + 4.0 - 3.0);
}

TEST(Csr, MultiplyMatchesDense) {
  const CsrMatrix m = small_matrix();
  const double x[] = {1.0, -1.0, 2.0};
  double y[3];
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], -5.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(Csr, MultiplyTransposeMatchesTransposedMultiply) {
  CooBuilder b(2, 3);
  b.add(0, 0, 1.0);
  b.add(0, 2, 2.0);
  b.add(1, 1, 3.0);
  const CsrMatrix m = b.to_csr();
  const CsrMatrix mt = m.transpose();
  const double x[] = {4.0, 5.0};
  double y1[3], y2[3];
  m.multiply_transpose(x, y1);
  mt.multiply(x, y2);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(Csr, TransposeIsInvolution) {
  const CsrMatrix m = laplacian_2d(5, 4);
  EXPECT_TRUE(m.transpose().transpose().equals(m));
}

TEST(Csr, TransposeKeepsColumnsSorted) {
  CooBuilder b(3, 3);
  b.add(0, 2, 1.0);
  b.add(1, 2, 2.0);
  b.add(2, 0, 3.0);
  const CsrMatrix mt = b.to_csr().transpose();
  for (index_t i = 0; i < mt.rows(); ++i) {
    const auto cols = mt.row_cols(i);
    for (std::size_t t = 1; t < cols.size(); ++t)
      EXPECT_LT(cols[t - 1], cols[t]);
  }
}

TEST(Csr, DiagonalExtraction) {
  const CsrMatrix m = small_matrix();
  const std::vector<double> d = m.diagonal();
  EXPECT_EQ(d.size(), 3u);
  for (double v : d) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Csr, EqualsWithTolerance) {
  const CsrMatrix a = small_matrix();
  CooBuilder b(3, 3);
  for (index_t i = 0; i < 3; ++i) {
    b.add(i, i, 2.0 + 1e-12);
    if (i + 1 < 3) b.add_symmetric(i + 1, i, -1.0);
  }
  const CsrMatrix a2 = b.to_csr();
  EXPECT_FALSE(a.equals(a2, 0.0));
  EXPECT_TRUE(a.equals(a2, 1e-10));
}

// --- scaling -------------------------------------------------------------------

TEST(Scale, ProducesUnitDiagonal) {
  CooBuilder b(3, 3);
  b.add(0, 0, 4.0);
  b.add(1, 1, 9.0);
  b.add(2, 2, 16.0);
  b.add_symmetric(1, 0, 2.0);
  b.add_symmetric(2, 1, -3.0);
  const CsrMatrix orig = b.to_csr();
  const UnitDiagonalScaling scaling(orig);
  const CsrMatrix scaled = scaling.scale_matrix(orig);
  EXPECT_TRUE(has_unit_diagonal(scaled));
  // Off-diagonal: A_ij = B_ij / sqrt(B_ii B_jj).
  EXPECT_NEAR(scaled.at(0, 1), 2.0 / (2.0 * 3.0), 1e-15);
  EXPECT_NEAR(scaled.at(2, 1), -3.0 / (4.0 * 3.0), 1e-15);
}

TEST(Scale, SolutionMappingRoundTrips) {
  // If x solves (DBD) x = D z then y = D x solves B y = z.
  CooBuilder b(2, 2);
  b.add(0, 0, 4.0);
  b.add(1, 1, 25.0);
  b.add_symmetric(1, 0, 1.0);
  const CsrMatrix orig = b.to_csr();
  const UnitDiagonalScaling scaling(orig);
  const CsrMatrix scaled = scaling.scale_matrix(orig);

  const std::vector<double> y_true = {1.0, -2.0};
  std::vector<double> z(2);
  orig.multiply(y_true.data(), z.data());

  // Solve the 2x2 scaled system directly.
  const std::vector<double> dz = scaling.scale_rhs(z);
  const double a11 = scaled.at(0, 0), a12 = scaled.at(0, 1),
               a22 = scaled.at(1, 1);
  const double det = a11 * a22 - a12 * a12;
  const std::vector<double> x = {(a22 * dz[0] - a12 * dz[1]) / det,
                                 (a11 * dz[1] - a12 * dz[0]) / det};
  const std::vector<double> y = scaling.unscale_solution(x);
  EXPECT_NEAR(y[0], y_true[0], 1e-12);
  EXPECT_NEAR(y[1], y_true[1], 1e-12);

  // scale_solution inverts unscale_solution.
  const std::vector<double> x_back = scaling.scale_solution(y);
  EXPECT_NEAR(x_back[0], x[0], 1e-12);
  EXPECT_NEAR(x_back[1], x[1], 1e-12);
}

TEST(Scale, RejectsNonPositiveDiagonal) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 1, -1.0);
  const CsrMatrix m = b.to_csr();
  EXPECT_THROW(UnitDiagonalScaling scaling(m), Error);
}

// --- properties ------------------------------------------------------------------

TEST(Properties, InfNormAndRho) {
  const CsrMatrix m = small_matrix();  // worst row sum = |-1| + 2 + |-1| = 4
  EXPECT_DOUBLE_EQ(inf_norm(m), 4.0);
  EXPECT_DOUBLE_EQ(rho(m), 4.0 / 3.0);
}

TEST(Properties, Rho2) {
  const CsrMatrix m = small_matrix();  // worst row: 1 + 4 + 1 = 6
  EXPECT_DOUBLE_EQ(rho2(m), 6.0 / 3.0);
}

TEST(Properties, FrobeniusNorm) {
  const CsrMatrix m = small_matrix();  // 3 diag (4) + 4 offdiag (1) = 16
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 4.0);
}

TEST(Properties, SymmetryDetection) {
  EXPECT_TRUE(is_symmetric(small_matrix()));
  CooBuilder b(2, 2);
  b.add(0, 1, 1.0);
  EXPECT_FALSE(is_symmetric(b.to_csr()));
}

TEST(Properties, DiagonalDominance) {
  EXPECT_FALSE(is_strictly_diagonally_dominant(small_matrix()));
  EXPECT_TRUE(is_weakly_diagonally_dominant(small_matrix()));

  CooBuilder b(2, 2);
  b.add(0, 0, 3.0);
  b.add(1, 1, 3.0);
  b.add_symmetric(1, 0, -1.0);
  EXPECT_TRUE(is_strictly_diagonally_dominant(b.to_csr()));
}

TEST(Properties, RowNnzStats) {
  const RowNnzStats s = row_nnz_stats(small_matrix());
  EXPECT_EQ(s.min, 2);
  EXPECT_EQ(s.max, 3);
  EXPECT_NEAR(s.mean, 7.0 / 3.0, 1e-15);
  EXPECT_NEAR(s.ratio, 1.5, 1e-15);
}

}  // namespace
}  // namespace asyrgs
