// asyrgs_sim — convergence-vs-tau curves from the deterministic simulators.
//
//   asyrgs_sim --kind sdd --n 600 --model fixed --taus 0,16,64,256
//   asyrgs_sim --model event --taus 8,64,256            # taus = processors
//   asyrgs_sim --engine replay --model uniform --taus 8,32
//   asyrgs_sim --smoke                                  # CI self-check
//
// For each tau (or, for --model event, each virtual-processor count) the
// tool runs the requested engine — `virtual` drives the production update
// kernel through simulate/virtual_engine, `replay` re-executes the paper's
// governing iterations via simulate/async_sim — averages the final squared
// A-norm error over --trials direction seeds, and emits one JSON object:
//
//   {"kind":"sdd","n":600,"model":"fixed","engine":"virtual","beta":1,
//    "curves":[{"tau":16,"applicable":true,"measured_ratio":...,
//               "envelope":...,"record_points":[...],"error_sq":[...]},...]}
//
// `envelope` is the Theorem 2 (consistent models) or Theorem 4
// (inconsistent models) free-running bound evaluated at the measured
// spectrum, with `applicable` reporting whether the theorem's precondition
// held (2 rho tau beta^2 adjustment positive); curves with applicable=false
// carry envelope=1.  docs/TUNING.md discusses choosing n against P/tau so
// the preconditions hold.
//
// --smoke runs a fixed miniature configuration and additionally verifies
// the virtual engine's determinism contract (two identical runs bit-equal;
// zero-delay run equal to the sequential solver; weighted-sampler runs
// bit-reproducible and convergent), exiting nonzero on any violation — the
// CTest hook `smoke_sim` builds on this.
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

namespace {

struct CurvePoint {
  std::int64_t label = 0;  ///< the --taus entry (tau, or processors for event)
  index_t tau = 0;         ///< effective tau (measured tau-hat for event)
  EnvelopeCheck check;
  std::vector<std::uint64_t> record_points;
  std::vector<double> error_sq;
};

struct RunConfig {
  CsrMatrix a;
  std::vector<double> b;
  std::vector<double> x0;
  std::vector<double> x_star;
  double e0 = 0.0;
  TheoremInputs inputs;  ///< tau/beta filled per curve point
};

RunConfig make_config(const std::string& kind, index_t n, std::uint64_t seed) {
  RunConfig c;
  CsrMatrix raw;
  if (kind == "laplacian1d") {
    raw = laplacian_1d(n);
  } else if (kind == "sdd") {
    RandomBandedOptions opt;
    opt.n = n;
    opt.offdiag_per_row = 6;
    opt.bandwidth = 32;
    opt.dominance_margin = 0.1;
    opt.seed = seed;
    raw = random_sdd(opt);
  } else {
    throw Error("unknown --kind (laplacian1d|sdd)");
  }
  c.a = UnitDiagonalScaling(raw).scale_matrix(raw);
  c.x_star = random_vector(n, seed + 1);
  c.b = rhs_from_solution(c.a, c.x_star);
  c.x0.assign(static_cast<std::size_t>(n), 0.0);
  c.e0 = std::pow(a_norm_error(c.a, c.x0, c.x_star), 2);

  ThreadPool pool(2);
  c.inputs = measure_theorem_inputs(
      pool, c.a, /*tau=*/0, /*beta=*/1.0,
      static_cast<int>(std::min<index_t>(n, 400)));
  return c;
}

void write_json(std::ostream& out, const std::string& kind, index_t n,
                const std::string& model, const std::string& engine,
                double beta, const std::vector<CurvePoint>& curves) {
  out << "{\"kind\":\"" << kind << "\",\"n\":" << n << ",\"model\":\""
      << model << "\",\"engine\":\"" << engine << "\",\"beta\":" << beta
      << ",\"curves\":[";
  for (std::size_t i = 0; i < curves.size(); ++i) {
    const CurvePoint& c = curves[i];
    if (i > 0) out << ",";
    out << "{\"label\":" << c.label << ",\"tau\":" << c.tau
        << ",\"applicable\":" << (c.check.applicable ? "true" : "false")
        << ",\"conforms\":" << (c.check.conforms ? "true" : "false")
        << ",\"measured_ratio\":" << c.check.measured_ratio
        << ",\"envelope\":" << c.check.envelope << ",\"m\":" << c.check.m
        << ",\"record_points\":[";
    for (std::size_t j = 0; j < c.record_points.size(); ++j)
      out << (j ? "," : "") << c.record_points[j];
    out << "],\"error_sq\":[";
    for (std::size_t j = 0; j < c.error_sq.size(); ++j)
      out << (j ? "," : "") << c.error_sq[j];
    out << "]}";
  }
  out << "]}\n";
}

/// Exact bit equality of two iterates — the determinism contract --smoke
/// enforces.
bool bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) return false;
  return true;
}

int run_smoke() {
  // Miniature fixed configuration: the checks mirror the acceptance tests
  // so a packaging/toolchain regression surfaces in CI smoke, not only in
  // the full suite.
  RunConfig c = make_config("laplacian1d", 64, 5);
  VirtualEngineOptions opt;
  opt.iterations = 64 * 8;
  opt.seed = 7;

  const ZeroDelay zero;
  const SimResult v1 = run_virtual_consistent(c.a, c.b, c.x0, c.x_star, zero, opt);
  const SimResult v2 = run_virtual_consistent(c.a, c.b, c.x0, c.x_star, zero, opt);
  if (!bit_equal(v1.x, v2.x)) {
    std::cerr << "smoke: repeated virtual runs are not bit-identical\n";
    return 2;
  }
  std::vector<double> x_seq = c.x0;
  RgsOptions ropt;
  ropt.sweeps = 8;
  ropt.seed = 7;
  rgs_solve(c.a, c.b, x_seq, ropt);
  if (!bit_equal(v1.x, x_seq)) {
    std::cerr << "smoke: zero-delay virtual run differs from sequential rgs\n";
    return 3;
  }

  EventSimOptions event;
  event.processors = 8;
  event.iterations = 64 * 8;
  event.seed = 7;
  VirtualEngineOptions eopt;
  eopt.step_size = 0.5;
  const VirtualEventResult e1 =
      run_virtual_event(c.a, c.b, c.x0, c.x_star, event, eopt);
  const VirtualEventResult e2 =
      run_virtual_event(c.a, c.b, c.x0, c.x_star, event, eopt);
  if (!bit_equal(e1.result.x, e2.result.x)) {
    std::cerr << "smoke: repeated event-driven runs are not bit-identical\n";
    return 4;
  }
  if (!(e1.result.final_error_sq < c.e0)) {
    std::cerr << "smoke: event-driven run did not reduce the error\n";
    return 5;
  }

  // Weighted-sampler conformance: the virtual engine drives the production
  // draw path (Philox stream mapped through the alias table), so a fixed
  // (seed, weights) run must be bit-reproducible and must still converge.
  {
    std::vector<double> w(static_cast<std::size_t>(c.a.rows()));
    for (index_t i = 0; i < c.a.rows(); ++i) {
      const nnz_t lo = c.a.row_ptr()[static_cast<std::size_t>(i)];
      const nnz_t hi = c.a.row_ptr()[static_cast<std::size_t>(i) + 1];
      double acc = 0.0;
      for (nnz_t t = lo; t < hi; ++t) {
        const double v = c.a.values()[static_cast<std::size_t>(t)];
        acc += v * v;
      }
      w[static_cast<std::size_t>(i)] = acc;
    }
    const DirectionSampler weighted =
        DirectionSampler::weighted(w.data(), c.a.rows());
    const SimResult w1 =
        run_virtual_consistent(c.a, c.b, c.x0, c.x_star, zero, opt, &weighted);
    const SimResult w2 =
        run_virtual_consistent(c.a, c.b, c.x0, c.x_star, zero, opt, &weighted);
    if (!bit_equal(w1.x, w2.x)) {
      std::cerr << "smoke: repeated weighted-sampler runs are not "
                   "bit-identical\n";
      return 6;
    }
    if (!(w1.final_error_sq < c.e0)) {
      std::cerr << "smoke: weighted-sampler run did not reduce the error\n";
      return 7;
    }
  }

  std::vector<CurvePoint> curves;
  for (std::int64_t tau : {0, 4, 16}) {
    const FixedDelay delay(static_cast<index_t>(tau));
    VirtualEngineOptions copt;
    copt.iterations = 64 * 8;
    copt.seed = 7;
    copt.record_every = 64;
    const SimResult run =
        run_virtual_consistent(c.a, c.b, c.x0, c.x_star, delay, copt);
    CurvePoint p;
    p.label = tau;
    p.tau = static_cast<index_t>(tau);
    TheoremInputs in = c.inputs;
    in.tau = p.tau;
    in.beta = 1.0;
    p.check = check_consistent_envelope(in, c.e0, run.final_error_sq,
                                        copt.iterations);
    p.record_points = run.record_points;
    p.error_sq = run.error_sq_history;
    curves.push_back(std::move(p));
  }
  write_json(std::cout, "laplacian1d", 64, "fixed", "virtual", 1.0, curves);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("asyrgs_sim",
                "convergence-vs-tau curves from the deterministic simulators");
  auto kind = cli.add_string("kind", "sdd", "laplacian1d|sdd");
  auto n = cli.add_int("n", 600, "dimension");
  auto model = cli.add_string(
      "model", "fixed", "fixed|uniform|batch|window|bernoulli|event");
  auto engine = cli.add_string("engine", "virtual", "virtual|replay");
  auto taus = cli.add_int_list("taus", {0, 8, 32, 128},
                               "tau sweep (processor counts for event)");
  auto iterations = cli.add_int("iterations", 0, "updates (0 = 30 n)");
  auto step = cli.add_double("step", 1.0, "step size beta");
  auto p_incl = cli.add_double("p", 0.5, "bernoulli: inclusion probability");
  auto trials = cli.add_int("trials", 3, "direction seeds averaged");
  auto seed = cli.add_int("seed", 1, "base seed (matrix uses seed, trials t)");
  auto record_every = cli.add_int("record-every", 0,
                                  "error-trace cadence (0 = final only)");
  auto out_path = cli.add_string("out", "", "output path (default stdout)");
  auto smoke = cli.add_flag("smoke", "run the fixed CI self-check and exit");

  try {
    cli.parse(argc, argv);
    if (*smoke) return run_smoke();

    RunConfig c = make_config(*kind, static_cast<index_t>(*n),
                              static_cast<std::uint64_t>(*seed));
    const std::uint64_t m =
        *iterations > 0 ? static_cast<std::uint64_t>(*iterations)
                        : static_cast<std::uint64_t>(30 * *n);
    const bool use_virtual = *engine == "virtual";
    require(use_virtual || *engine == "replay",
            "unknown --engine (virtual|replay)");

    std::vector<CurvePoint> curves;
    for (std::int64_t label : taus.value()) {
      CurvePoint point;
      point.label = label;
      double err_acc = 0.0;
      for (std::int64_t t = 0; t < *trials; ++t) {
        SimOptions opt;
        opt.iterations = m;
        opt.seed = static_cast<std::uint64_t>(*seed + 1000 * (t + 1));
        opt.step_size = *step;
        if (t == 0)
          opt.record_every = static_cast<std::uint64_t>(*record_every);

        SimResult run;
        std::unique_ptr<ConsistentDelayModel> consistent;
        std::unique_ptr<InconsistentDelayModel> inconsistent;
        if (*model == "fixed") {
          consistent = std::make_unique<FixedDelay>(static_cast<index_t>(label));
        } else if (*model == "uniform") {
          consistent = std::make_unique<UniformDelay>(
              static_cast<index_t>(label), opt.seed);
        } else if (*model == "batch") {
          consistent =
              std::make_unique<BatchDelay>(static_cast<index_t>(label));
        } else if (*model == "window") {
          inconsistent =
              std::make_unique<WindowExclusion>(static_cast<index_t>(label));
        } else if (*model == "bernoulli") {
          inconsistent = std::make_unique<BernoulliInclusion>(
              static_cast<index_t>(label), *p_incl, opt.seed);
        } else if (*model == "event") {
          EventSimOptions event;
          event.processors = static_cast<int>(label);
          event.iterations = m;
          event.seed = opt.seed;
          auto sched = std::make_unique<EventDrivenSchedule>(
              EventDrivenSchedule::build(c.a, event));
          point.tau = sched->tau();
          inconsistent = std::move(sched);
        } else {
          throw Error("unknown --model");
        }

        if (consistent) {
          point.tau = consistent->tau();
          run = use_virtual
                    ? run_virtual_consistent(c.a, c.b, c.x0, c.x_star,
                                             *consistent, opt)
                    : simulate_consistent(c.a, c.b, c.x0, c.x_star,
                                          *consistent, opt);
        } else {
          if (*model != "event") point.tau = inconsistent->tau();
          run = use_virtual
                    ? run_virtual_inconsistent(c.a, c.b, c.x0, c.x_star,
                                               *inconsistent, opt)
                    : simulate_inconsistent(c.a, c.b, c.x0, c.x_star,
                                            *inconsistent, opt);
        }
        err_acc += run.final_error_sq;
        if (t == 0) {
          point.record_points = run.record_points;
          point.error_sq = run.error_sq_history;
        }
      }
      TheoremInputs in = c.inputs;
      in.tau = point.tau;
      in.beta = *step;
      const double mean_err = err_acc / static_cast<double>(*trials);
      const bool is_consistent =
          *model == "fixed" || *model == "uniform" || *model == "batch";
      point.check =
          is_consistent
              ? check_consistent_envelope(in, c.e0, mean_err, m)
              : check_inconsistent_envelope(in, c.e0, mean_err, m);
      curves.push_back(std::move(point));
    }

    if (out_path.value().empty()) {
      write_json(std::cout, *kind, static_cast<index_t>(*n), *model, *engine,
                 *step, curves);
    } else {
      std::ofstream file(*out_path);
      require(file.good(), "cannot open --out path");
      write_json(file, *kind, static_cast<index_t>(*n), *model, *engine,
                 *step, curves);
      std::cerr << "wrote " << *out_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
