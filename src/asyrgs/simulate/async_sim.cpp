#include "asyrgs/simulate/async_sim.hpp"

#include <cmath>

#include "asyrgs/support/prng.hpp"

namespace asyrgs {

namespace {

/// Shared replay state: the current iterate plus a ring buffer of the most
/// recent updates (enough to reconstruct any state within the tau window).
class Replay {
 public:
  Replay(const CsrMatrix& a, const std::vector<double>& b,
         const std::vector<double>& x0, const std::vector<double>& x_star,
         index_t tau, const SimOptions& options)
      : a_(a), b_(b), x_star_(x_star), x_(x0), options_(options) {
    require(a.square(), "simulate: matrix must be square");
    require(static_cast<index_t>(b.size()) == a.rows() &&
                static_cast<index_t>(x0.size()) == a.rows() &&
                static_cast<index_t>(x_star.size()) == a.rows(),
            "simulate: shape mismatch");
    require(options.step_size > 0.0 && options.step_size < 2.0,
            "simulate: step size must be in (0, 2)");
    inv_diag_ = a.diagonal();
    for (double& d : inv_diag_) {
      require(d > 0.0, "simulate: diagonal must be strictly positive");
      d = 1.0 / d;
    }
    window_rows_.resize(static_cast<std::size_t>(tau) + 1, 0);
    window_deltas_.resize(static_cast<std::size_t>(tau) + 1, 0.0);
    row_cache_.resize(static_cast<std::size_t>(a.rows()), 0.0);
  }

  /// Row of A * direction for step j (uniform over rows).
  [[nodiscard]] index_t direction(std::uint64_t j) const {
    return Philox4x32(options_.seed).index_at(j, a_.rows());
  }

  /// b_r - A_r . x_current, delegated to the canonical shared row scan
  /// (sparse/csr.hpp) — one subtraction per nonzero in column order, the
  /// association core/rgs and the update kernels use, so a zero-delay
  /// replay is bit-identical to the sequential solver.
  [[nodiscard]] double residual_now(index_t r) const {
    const nnz_t lo = a_.row_ptr()[r];
    const nnz_t hi = a_.row_ptr()[static_cast<std::size_t>(r) + 1];
    return csr_row_sub_dot(b_[r], a_.col_idx().data() + lo,
                           a_.values().data() + lo, hi - lo, x_.data());
  }

  /// Correction term sum over a stale update t: A(r, row_t) * delta_t —
  /// subtracting it from A_r . x_current "un-applies" update t for this
  /// read.  The entry lookup goes through a dense scatter of row r (loaded
  /// once per row change) instead of a per-call binary search: the window
  /// loop's innermost operation drops from O(log nnz(r)) to O(1), with the
  /// identical A(r, row_t) value (0.0 for absent entries), so the replayed
  /// arithmetic is unchanged bit for bit.
  [[nodiscard]] double unapply(index_t r, std::uint64_t t) {
    const std::size_t slot = static_cast<std::size_t>(t % window_rows_.size());
    const index_t row_t = window_rows_[slot];
    const double delta_t = window_deltas_[slot];
    if (delta_t == 0.0) return 0.0;
    load_row_cache(r);
    return row_cache_[static_cast<std::size_t>(row_t)] * delta_t;
  }

  /// Applies update j: x_{r} += beta * gamma and records it in the window.
  void apply(std::uint64_t j, index_t r, double gamma) {
    const double delta = options_.step_size * gamma;
    x_[static_cast<std::size_t>(r)] += delta;
    const std::size_t slot = static_cast<std::size_t>(j % window_rows_.size());
    window_rows_[slot] = r;
    window_deltas_[slot] = delta;
  }

  [[nodiscard]] double error_sq() const {
    // ||x - x*||_A^2 = (x - x*)^T A (x - x*), O(nnz).
    const index_t n = a_.rows();
    std::vector<double> e(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) e[i] = x_[i] - x_star_[i];
    double acc = 0.0;
    for (index_t i = 0; i < n; ++i) acc += e[i] * a_.row_dot(i, e.data());
    return std::max(acc, 0.0);
  }

  void maybe_record(std::uint64_t j, SimResult& result) const {
    if (options_.record_every != 0 && j % options_.record_every == 0) {
      result.record_points.push_back(j);
      result.error_sq_history.push_back(error_sq());
    }
  }

  [[nodiscard]] SimResult finish(std::uint64_t iterations) {
    SimResult result;
    result.iterations = iterations;
    result.final_error_sq = error_sq();
    result.x = std::move(x_);
    return result;
  }

  [[nodiscard]] const CsrMatrix& matrix() const { return a_; }
  [[nodiscard]] double inv_diag_at(index_t r) const { return inv_diag_[r]; }

 private:
  /// Scatters row r's values into the dense cache, clearing the previously
  /// cached row through its own column list (O(nnz) on a row change, free
  /// while r repeats — and every unapply call within one replay step shares
  /// the same reading row).
  void load_row_cache(index_t r) {
    if (cached_row_ == r) return;
    if (cached_row_ >= 0) {
      const auto old_cols = a_.row_cols(cached_row_);
      for (std::size_t t = 0; t < old_cols.size(); ++t)
        row_cache_[static_cast<std::size_t>(old_cols[t])] = 0.0;
    }
    const auto cols = a_.row_cols(r);
    const auto vals = a_.row_vals(r);
    for (std::size_t t = 0; t < cols.size(); ++t)
      row_cache_[static_cast<std::size_t>(cols[t])] = vals[t];
    cached_row_ = r;
  }

  const CsrMatrix& a_;
  const std::vector<double>& b_;
  const std::vector<double>& x_star_;
  std::vector<double> x_;
  std::vector<double> inv_diag_;
  SimOptions options_;
  std::vector<index_t> window_rows_;
  std::vector<double> window_deltas_;
  std::vector<double> row_cache_;
  index_t cached_row_ = -1;
};

}  // namespace

SimResult simulate_consistent(const CsrMatrix& a, const std::vector<double>& b,
                              const std::vector<double>& x0,
                              const std::vector<double>& x_star,
                              const ConsistentDelayModel& delay,
                              const SimOptions& options) {
  Replay replay(a, b, x0, x_star, delay.tau(), options);
  SimResult result;

  for (std::uint64_t j = 0; j < options.iterations; ++j) {
    replay.maybe_record(j, result);
    const index_t r = replay.direction(j);

    // Verify the schedule respects Assumption A-3 before trusting it.
    const std::uint64_t k = delay.snapshot(j);
    require(k <= j, "simulate_consistent: schedule returned k(j) > j");
    require(j - k <= static_cast<std::uint64_t>(delay.tau()),
            "simulate_consistent: schedule violated its tau bound");

    // b_r - A_r . x_{k(j)} = (b_r - A_r . x_j) + contributions of the
    // updates in [k, j) that the stale snapshot has not seen.
    double resid = replay.residual_now(r);
    for (std::uint64_t t = k; t < j; ++t) resid += replay.unapply(r, t);

    const double gamma = resid * replay.inv_diag_at(r);
    replay.apply(j, r, gamma);
  }
  SimResult finished = replay.finish(options.iterations);
  finished.record_points = std::move(result.record_points);
  finished.error_sq_history = std::move(result.error_sq_history);
  return finished;
}

SimResult simulate_inconsistent(const CsrMatrix& a,
                                const std::vector<double>& b,
                                const std::vector<double>& x0,
                                const std::vector<double>& x_star,
                                const InconsistentDelayModel& delay,
                                const SimOptions& options) {
  Replay replay(a, b, x0, x_star, delay.tau(), options);
  SimResult result;
  const std::uint64_t tau = static_cast<std::uint64_t>(delay.tau());
  std::vector<std::uint64_t> excluded;

  for (std::uint64_t j = 0; j < options.iterations; ++j) {
    replay.maybe_record(j, result);
    const index_t r = replay.direction(j);

    // x_{K(j)} differs from x_j only on updates in the tau window that the
    // schedule excludes (everything older is always included, Assumption
    // A-3 for the inconsistent model).
    const std::uint64_t window_start = j > tau ? j - tau : 0;
    excluded.clear();
    delay.excluded_in_window(j, window_start, excluded);
    double resid = replay.residual_now(r);
    for (std::uint64_t t : excluded) {
      require(t >= window_start && t < j,
              "simulate_inconsistent: schedule excluded an update outside "
              "its declared tau window");
      resid += replay.unapply(r, t);
    }

    const double gamma = resid * replay.inv_diag_at(r);
    replay.apply(j, r, gamma);
  }
  SimResult finished = replay.finish(options.iterations);
  finished.record_points = std::move(result.record_points);
  finished.error_sq_history = std::move(result.error_sq_history);
  return finished;
}

}  // namespace asyrgs
