// Programmable delay schedules for the bounded-delay execution models.
//
// The paper analyzes two abstractions of asynchronous execution (Section 4):
//
//  * Consistent read (iteration (8)): step j computes its update from the
//    full snapshot x_{k(j)} with j - tau <= k(j) <= j (Assumptions A-2/A-3).
//  * Inconsistent read (iteration (9)): step j sees x_0 plus an arbitrary
//    *subset* K(j) of earlier updates that contains everything older than
//    tau (Assumption A-3'); the mixture it reads may never have existed in
//    memory.
//
// Assumption A-4 requires the delays to be independent of the random
// direction choices; the randomized schedules below therefore draw from a
// Philox stream keyed separately from the direction stream.
//
// A real parallel run cannot enforce any of this; the simulator
// (async_sim.hpp) replays the governing iterations exactly, with the
// schedule supplied by one of these models.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asyrgs/support/common.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {

/// k(j) schedule for the consistent-read model.
class ConsistentDelayModel {
 public:
  virtual ~ConsistentDelayModel() = default;

  /// Returns k(j): the snapshot index read by iteration j.  Must satisfy
  /// max(0, j - tau()) <= k(j) <= j.
  [[nodiscard]] virtual std::uint64_t snapshot(std::uint64_t j) const = 0;

  /// The bound tau of Assumption A-3.
  [[nodiscard]] virtual index_t tau() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Membership schedule for the inconsistent-read model: iteration j sees
/// update t < j iff includes(j, t).  Updates older than tau are always seen.
class InconsistentDelayModel {
 public:
  virtual ~InconsistentDelayModel() = default;

  /// Whether update t (with j - tau <= t < j) is visible to iteration j.
  [[nodiscard]] virtual bool includes(std::uint64_t j,
                                      std::uint64_t t) const = 0;

  [[nodiscard]] virtual index_t tau() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Appends the indices in [window_start, j) invisible to iteration j.
  /// The default scans includes(); schedules that precompute their
  /// exclusion sets (e.g. the event-driven model) override this so a replay
  /// step costs O(|excluded|) instead of O(tau).
  virtual void excluded_in_window(std::uint64_t j, std::uint64_t window_start,
                                  std::vector<std::uint64_t>& out) const {
    for (std::uint64_t t = window_start; t < j; ++t)
      if (!includes(j, t)) out.push_back(t);
  }
};

// --- Consistent-read schedules ---------------------------------------------

/// k(j) = j: fully synchronous execution (the randomized Gauss-Seidel of
/// Section 3); the simulator must then reproduce the sequential solver.
class ZeroDelay final : public ConsistentDelayModel {
 public:
  [[nodiscard]] std::uint64_t snapshot(std::uint64_t j) const override {
    return j;
  }
  [[nodiscard]] index_t tau() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "zero"; }
};

/// k(j) = max(0, j - tau): every read is maximally stale — the adversarial
/// schedule the Theorem 2 proof actually charges for.
class FixedDelay final : public ConsistentDelayModel {
 public:
  explicit FixedDelay(index_t tau) : tau_(tau) {
    require(tau >= 0, "FixedDelay: tau must be non-negative");
  }
  [[nodiscard]] std::uint64_t snapshot(std::uint64_t j) const override {
    return j >= static_cast<std::uint64_t>(tau_)
               ? j - static_cast<std::uint64_t>(tau_)
               : 0;
  }
  [[nodiscard]] index_t tau() const override { return tau_; }
  [[nodiscard]] std::string name() const override {
    return "fixed(" + std::to_string(tau_) + ")";
  }

 private:
  index_t tau_;
};

/// k(j) = j - U{0..tau}: random staleness, independent of the direction
/// stream (separate Philox key), honouring Assumption A-4.
class UniformDelay final : public ConsistentDelayModel {
 public:
  UniformDelay(index_t tau, std::uint64_t seed)
      : tau_(tau), prng_(splitmix64(seed ^ 0xDE1A7ull)) {
    require(tau >= 0, "UniformDelay: tau must be non-negative");
  }
  [[nodiscard]] std::uint64_t snapshot(std::uint64_t j) const override {
    const std::uint64_t lag =
        static_cast<std::uint64_t>(prng_.index_at(j, tau_ + 1));
    return j >= lag ? j - lag : 0;
  }
  [[nodiscard]] index_t tau() const override { return tau_; }
  [[nodiscard]] std::string name() const override {
    return "uniform(" + std::to_string(tau_) + ")";
  }

 private:
  index_t tau_;
  Philox4x32 prng_;
};

/// Emulates P processors advancing in lockstep batches: all iterations in
/// batch m = floor(j / P) read the snapshot taken at the batch start, i.e.
/// k(j) = floor(j / P) * P.  tau = P - 1.
class BatchDelay final : public ConsistentDelayModel {
 public:
  explicit BatchDelay(index_t processors) : p_(processors) {
    require(processors >= 1, "BatchDelay: need at least one processor");
  }
  [[nodiscard]] std::uint64_t snapshot(std::uint64_t j) const override {
    return (j / static_cast<std::uint64_t>(p_)) *
           static_cast<std::uint64_t>(p_);
  }
  [[nodiscard]] index_t tau() const override { return p_ - 1; }
  [[nodiscard]] std::string name() const override {
    return "batch(P=" + std::to_string(p_) + ")";
  }

 private:
  index_t p_;
};

// --- Inconsistent-read schedules --------------------------------------------

/// Adapts a consistent schedule: K(j) = {0, ..., k(j)-1} — a prefix, which
/// makes the inconsistent iteration coincide with the consistent one.
class PrefixInclusion final : public InconsistentDelayModel {
 public:
  explicit PrefixInclusion(std::shared_ptr<ConsistentDelayModel> inner)
      : inner_(std::move(inner)) {
    require(inner_ != nullptr, "PrefixInclusion: null inner model");
  }
  [[nodiscard]] bool includes(std::uint64_t j, std::uint64_t t) const override {
    return t < inner_->snapshot(j);
  }
  [[nodiscard]] index_t tau() const override { return inner_->tau(); }
  [[nodiscard]] std::string name() const override {
    return "prefix(" + inner_->name() + ")";
  }

 private:
  std::shared_ptr<ConsistentDelayModel> inner_;
};

/// Each update within the tau window is visible with probability p,
/// independently (Philox-keyed by (j, t), independent of directions).
/// Genuinely inconsistent: the visible set is not a prefix.
class BernoulliInclusion final : public InconsistentDelayModel {
 public:
  BernoulliInclusion(index_t tau, double p, std::uint64_t seed)
      : tau_(tau), p_(p), prng_(splitmix64(seed ^ 0xB3A70ull)) {
    require(tau >= 0, "BernoulliInclusion: tau must be non-negative");
    require(p >= 0.0 && p <= 1.0, "BernoulliInclusion: p must be in [0,1]");
  }
  [[nodiscard]] bool includes(std::uint64_t j, std::uint64_t t) const override {
    // A-3' as an interface: anything older than tau is always visible.
    // Inside the window (where the simulator actually asks), the clause is
    // never taken and the Bernoulli draw decides as before.
    if (t + static_cast<std::uint64_t>(tau_) < j) return true;
    // Key the draw by the (j, t) pair: mix t into the high counter word.
    const auto block = prng_.block(t, j);
    const double u = static_cast<double>(block[0]) * 0x1.0p-32;
    return u < p_;
  }
  [[nodiscard]] index_t tau() const override { return tau_; }
  [[nodiscard]] std::string name() const override {
    return "bernoulli(tau=" + std::to_string(tau_) + ")";
  }

 private:
  index_t tau_;
  double p_;
  Philox4x32 prng_;
};

/// Worst-case inconsistent schedule: nothing inside the tau window is ever
/// visible (K(j) = {0, ..., j - tau - 1}).
class WindowExclusion final : public InconsistentDelayModel {
 public:
  explicit WindowExclusion(index_t tau) : tau_(tau) {
    require(tau >= 0, "WindowExclusion: tau must be non-negative");
  }
  [[nodiscard]] bool includes(std::uint64_t j, std::uint64_t t) const override {
    // Honour the A-3' contract as an *interface*, not just inside the
    // simulator's tau window: updates older than tau are always included
    // (t + tau < j), everything inside the window is excluded.
    return t + static_cast<std::uint64_t>(tau_) < j;
  }
  [[nodiscard]] index_t tau() const override { return tau_; }
  [[nodiscard]] std::string name() const override {
    return "window-excl(" + std::to_string(tau_) + ")";
  }

 private:
  index_t tau_;
};

}  // namespace asyrgs
