// SolverService: sharded multi-pool serving front-end.
//
// The prepared handles (asyrgs/problem.hpp) amortize per-matrix analysis
// across repeated solves, but one handle serializes concurrent solve()
// calls through its single ThreadPool — fine for a request loop, a ceiling
// for the paper's motivating workload of *many concurrent* solves against
// one operator (Section 9: one matrix, a stream of right-hand sides).
// SolverService lifts that ceiling the way the paper's analysis says it
// should scale: independent solves have no shared mutable state beyond the
// immutable matrix, so N pools can run N solves truly in parallel.
//
//   SolverService service(a, {.shards = 4, .prepare_lsq = true});
//   SolveTicket t = service.submit(b);            // returns immediately
//   const SolveOutcome& out = t.wait();           // blocks for completion
//   const std::vector<double>& x = t.solution();
//
// Architecture: the service owns `shards` ThreadPools; each shard carries
// its own prepared SpdProblem / LsqProblem handle, shard-cloned from shard
// 0's so the per-matrix analysis (symmetry validation, diagonal
// reciprocals, the cached transpose, column-norm denominators) is paid
// exactly once for the whole service (ProblemStats on the clones stay at
// zero validation passes / transpose builds).  Requests enter one FIFO
// queue; every free shard pulls the oldest request, so work always lands
// on a least-loaded (idle) shard and queues only when all shards are busy.
//
// Determinism: a request with fixed SolveControls (seed, workers, pinned
// scan) produces a bit-identical result on whichever shard runs it — all
// shards hold clones of the same analysis against the same matrix, and
// shard pools are all the same size so worker-count resolution cannot
// differ.  With `controls.workers` pinned explicitly the result is also
// bit-identical across services with different shard counts.  Gated by
// tests/test_service.cpp.
//
// Thread-safety: submit_*(), drain(), and stats() may be called
// concurrently from any number of client threads.  A SolveTicket is a
// value handle to shared state; wait()/solution() may be called from any
// thread (one at a time per ticket).  The bound CsrMatrix must outlive the
// service.  Destruction drains: every submitted request is completed
// before the destructor returns.
#pragma once

#include <memory>
#include <vector>

#include "asyrgs/linalg/multivector.hpp"
#include "asyrgs/problem.hpp"
#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

namespace detail {
struct TicketState;   // request + result + completion latch (service.cpp)
struct ServiceImpl;   // shards, queue, dispatcher threads (service.cpp)
}  // namespace detail

/// Per-service configuration, fixed at construction.
struct ServiceOptions {
  /// Number of pool shards (concurrent solve lanes).  Each shard owns a
  /// ThreadPool of `workers_per_shard` threads and prepared handle clones.
  int shards = 2;
  /// Team capacity of each shard's pool.  0 = auto: hardware_concurrency()
  /// divided by `shards`, at least 1.  Keep it explicit when bit-identical
  /// results across services with different shard counts matter (see the
  /// determinism note above).
  int workers_per_shard = 0;
  /// Prepare SPD handles (required for submit / submit_block).
  bool prepare_spd = true;
  /// Prepare least-squares handles (required for submit_least_squares).
  /// Off by default: it materializes A^T through the matrix cache.
  bool prepare_lsq = false;
  /// Validate symmetry at construction (SPD family; shard 0 only — clones
  /// reuse the verdict).
  bool check_input = true;
};

/// Future-like handle to one submitted solve.  Cheap to copy (shared
/// state); default-constructed tickets are invalid until assigned.
class SolveTicket {
 public:
  SolveTicket() = default;

  /// True when this ticket refers to a submitted request.
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// True once the request has completed (never blocks).
  [[nodiscard]] bool done() const;

  /// Blocks until the request completes and returns the outcome.  A solve
  /// that threw (e.g. shape mismatch discovered on the shard) rethrows the
  /// exception here — and on every later wait()/solution() call.
  const SolveOutcome& wait();

  /// The solution vector (SPD single / least-squares requests); blocks like
  /// wait().  Valid until the last ticket copy is destroyed.
  [[nodiscard]] const std::vector<double>& solution();

  /// The block solution (submit_block requests); blocks like wait().
  [[nodiscard]] const MultiVector& block_solution();

  /// Index of the shard that executed the request (blocks like wait());
  /// exposed for tests and load diagnostics.
  [[nodiscard]] int shard();

 private:
  friend class SolverService;
  explicit SolveTicket(std::shared_ptr<detail::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::TicketState> state_;
};

/// Per-shard serving counters, exposed through ServiceStats.
struct ShardStats {
  long long served = 0;  ///< requests this shard completed
  ProblemStats spd;      ///< the shard's SpdProblem counters (if prepared)
  ProblemStats lsq;      ///< the shard's LsqProblem counters (if prepared)
};

/// Aggregated service counters; a consistent snapshot at the time of the
/// stats() call.
struct ServiceStats {
  long long submitted = 0;  ///< tickets issued
  long long completed = 0;  ///< tickets fulfilled (including failed solves)
  long long queued = 0;     ///< requests currently waiting for a shard
  /// Validation passes summed over every shard's handles — stays at the
  /// shard-0 construction count (1 per prepared family) because clones
  /// re-validate nothing.
  int validation_passes = 0;
  /// Transpose builds summed over every shard's handles — at most 1 (and 0
  /// when the matrix cache was already warm), shared via
  /// CsrMatrix::transpose_shared().
  int transpose_builds = 0;
  std::vector<ShardStats> shards;
};

/// Sharded serving front-end: N ThreadPool shards, each with prepared
/// handle clones of one analyzed matrix, fed from a single FIFO queue.
/// See the header comment for architecture, determinism, and
/// thread-safety; docs/API.md for the lifecycle contract.
class SolverService {
 public:
  /// Prepares shard 0's handles against `a` (full analysis) and shard
  /// clones for the rest, then starts one dispatcher thread per shard.
  /// Throws asyrgs::Error on malformed input (same checks as the handle
  /// constructors) or when no family is enabled.  `a` is kept by
  /// reference and must outlive the service.
  explicit SolverService(const CsrMatrix& a, ServiceOptions options = {});

  /// Drains the queue (every submitted request completes), then stops and
  /// joins the dispatcher threads.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueues an SPD solve A x = b from x = 0; returns immediately.
  /// Requires ServiceOptions::prepare_spd.  The right-hand side is moved
  /// into the ticket, so the caller's buffer is not referenced afterwards.
  SolveTicket submit(std::vector<double> b, SolveControls controls = {});

  /// Enqueues a block SPD solve A X = B from X = 0 (asynchronous method
  /// only, as SpdProblem::solve(MultiVector)).  Requires prepare_spd.
  SolveTicket submit_block(MultiVector b, SolveControls controls = {});

  /// Enqueues a least-squares solve min ||A x - b|| from x = 0.  Requires
  /// ServiceOptions::prepare_lsq.
  SolveTicket submit_least_squares(std::vector<double> b,
                                   SolveControls controls = {});

  /// Blocks until every request submitted so far has completed.
  void drain();

  [[nodiscard]] int shards() const noexcept;
  [[nodiscard]] int workers_per_shard() const noexcept;
  [[nodiscard]] const CsrMatrix& matrix() const noexcept;
  [[nodiscard]] ServiceStats stats() const;

 private:
  SolveTicket enqueue(std::shared_ptr<detail::TicketState> state);

  std::unique_ptr<detail::ServiceImpl> impl_;
};

}  // namespace asyrgs
